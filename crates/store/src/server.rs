//! The region server: serves gets/puts/scans for its assigned regions,
//! applies updates to WAL + memstore, flushes memstores to store files,
//! and participates in recovery via the [`RecoveryHooks`].

use crate::blockcache::BlockCache;
use crate::codec::WalRecord;
use crate::compaction::{
    self, CompactionConfig, CompactionJob, CompactionPolicy, CompactionPolicyKind, CompactionStats,
    FileMeta, GcWatermark, StallSignal,
};
use crate::error::StoreError;
use crate::hooks::{NoopHooks, RecoveryHooks, SplitCoordinator};
use crate::memstore::{MemStore, VersionedValue};
use crate::region::RegionDescriptor;
use crate::sstable::{StoreFileData, StoreFileRegistry};
use crate::types::{Mutation, RegionId, ServerId, Timestamp};
use crate::wal::{Wal, WalSyncMode};
use bytes::Bytes;
use cumulo_coord::CoordClient;
use cumulo_dfs::DfsClient;
use cumulo_sim::metrics::{Counter, Gauge, GaugeMap, MetricsRegistry};
use cumulo_sim::trace::Journal;
use cumulo_sim::{every_from, Network, NodeId, ServiceQueue, Sim, SimDuration, TimerHandle};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::{Rc, Weak};

/// Region-server tuning knobs.
///
/// The defaults are calibrated so that one server with 50 closed-loop
/// clients saturates near ~250–300 transactions/s (10 ops each, 50/50
/// read/update), matching the paper's observation that 250 tps is "near
/// the peak capacity for a single region server serving 50 client
/// threads" (§4.4).
#[derive(Copy, Clone, Debug)]
pub struct RegionServerConfig {
    /// Concurrent request handler slots (the paper's VMs had 2 cores).
    pub handlers: usize,
    /// Base CPU cost of any request.
    pub base_service: SimDuration,
    /// CPU cost of a get served from memstore/block cache.
    pub read_service: SimDuration,
    /// Extra handler occupancy when a get misses the block cache and must
    /// fetch a block from the filesystem.
    pub block_fetch_penalty: SimDuration,
    /// CPU cost per mutation in a write batch.
    pub write_service_per_mutation: SimDuration,
    /// Whether updates are acknowledged before (Async) or after (Sync)
    /// the WAL reaches the filesystem.
    pub wal_mode: WalSyncMode,
    /// Background WAL sync period in Async mode.
    pub wal_sync_interval: SimDuration,
    /// Memstore size that triggers a flush to a store file.
    pub memstore_flush_bytes: usize,
    /// How often memstore sizes are checked.
    pub flush_check_interval: SimDuration,
    /// Block-cache capacity, in row-blocks.
    pub block_cache_capacity: usize,
    /// Extra handler occupancy per write batch in [`WalSyncMode::Sync`]:
    /// the handler thread blocks while the WAL pipeline syncs (this is
    /// why synchronous persistence also costs peak throughput, not just
    /// latency).
    pub sync_mode_handler_hold: SimDuration,
    /// Liveness heartbeat period to the coordination service.
    pub coord_heartbeat_interval: SimDuration,
    /// Coordination session timeout (failure-detection latency).
    pub coord_session_timeout: SimDuration,
    /// Extra handler occupancy per store file consulted *beyond the
    /// first* on gets and scans — the read-amplification cost that
    /// background compaction exists to bound. Point gets consult only
    /// files that survive key-range pruning and a bloom-filter probe;
    /// scans consult every file whose row range overlaps theirs.
    pub storefile_read_service: SimDuration,
    /// Handler occupancy per bloom-filter probe on a point get: filters
    /// are not free, they trade a small fixed cost per range-covering
    /// file for the much larger `storefile_read_service` of consulting
    /// files that cannot contain the key.
    pub filter_probe_service: SimDuration,
    /// Whether point gets use the per-file bloom filters (key-range
    /// pruning is always on — it is a free metadata comparison). Mostly
    /// an A/B switch for benchmarks; see [`RegionServer::set_bloom_filters`].
    pub bloom_filters: bool,
    /// Measurement-only cross-check: when a filter excludes a file, also
    /// run the exact membership check and count a false negative if the
    /// filter was wrong (it never should be). Costs host time, not
    /// simulated service time; enable in tests and benches.
    pub verify_filters: bool,
    /// Background compaction knobs.
    pub compaction: CompactionConfig,
    /// Online region-split knobs.
    pub split: SplitConfig,
    /// Online region-merge knobs.
    pub merge: MergeConfig,
    /// Primary/backup region-replication knobs.
    pub replication: ReplicationConfig,
}

/// Primary/backup region-replication tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ReplicationConfig {
    /// Master switch. Off by default: shipping mutations to backups adds
    /// network messages (each draws latency jitter from the shared RNG),
    /// so calibrated experiments that predate replication must not
    /// shift. The replication suites and `failover_bench` enable it.
    pub enabled: bool,
    /// Unacknowledged shipped bytes per backup lane at which the lane is
    /// declared lagging: the primary stops shipping (and stops gating
    /// client acks on it) and reports the backup ineligible for
    /// promotion until a full re-sync completes.
    pub max_backlog_bytes: usize,
    /// How long the primary waits for a backup's ack before declaring
    /// the lane out of sync (fixed delay, no RNG).
    pub ack_timeout: SimDuration,
    /// Period of the re-sync timer that ships full region state to
    /// out-of-sync lanes. Fixed phase — no RNG jitter (see the
    /// compaction timer note).
    pub resync_interval: SimDuration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: false,
            max_backlog_bytes: 8 << 20,
            ack_timeout: SimDuration::from_millis(1500),
            resync_interval: SimDuration::from_secs(2),
        }
    }
}

/// Shared observability for primary/backup replication (all handles
/// clone cheaply and share state, like [`CompactionStats`]).
#[derive(Clone, Default, Debug)]
pub struct ReplicationStats {
    /// Mutation records shipped to backup lanes (primary side).
    pub ships: Counter,
    /// Payload bytes shipped to backup lanes (primary side).
    pub ship_bytes: Counter,
    /// Acks received from backups (primary side).
    pub acks: Counter,
    /// Gap/stale rejections received from backups (primary side).
    pub nacks: Counter,
    /// Full-state syncs shipped (primary side).
    pub syncs: Counter,
    /// Shipped records applied to a shadow (backup side).
    pub applied: Counter,
    /// Ships rejected because the sender's epoch was stale (backup side).
    pub fences: Counter,
    /// Regions this server fenced itself out of after learning a newer
    /// epoch exists (stale-primary self-fencing).
    pub fenced: Counter,
    /// Backup lanes declared out of sync (ack timeout, gap or backlog).
    pub lane_drops: Counter,
    /// Current unacknowledged shipped bytes across all lanes (primary).
    pub backlog_bytes: Gauge,
    /// Worst `shipped - acked` sequence distance across lanes (primary).
    pub lag: Gauge,
}

/// Online region-split tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct SplitConfig {
    /// Master switch. Off by default: splits add master RPCs and map
    /// epochs, and calibrated experiments that predate them should not
    /// shift. The hotspot workloads and the split test suites enable it.
    pub enabled: bool,
    /// Durable store-file bytes (excluding the flushing snapshot) at
    /// which a hosted region becomes a split candidate.
    pub threshold_bytes: usize,
    /// How often regions are checked for split candidacy. The timer runs
    /// at a fixed phase — no RNG jitter (see the compaction timer note).
    pub check_interval: SimDuration,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            enabled: false,
            threshold_bytes: 256 << 20,
            check_interval: SimDuration::from_secs(2),
        }
    }
}

/// Online region-merge tuning knobs (the inverse of [`SplitConfig`]).
#[derive(Copy, Clone, Debug)]
pub struct MergeConfig {
    /// Master switch. Off by default for the same determinism reason as
    /// splits: merges add master RPCs and map epochs, and calibrated
    /// experiments that predate them must not shift. The scale campaign
    /// and the merge test suites enable it.
    pub enabled: bool,
    /// Combined durable store-file bytes below which two adjacent
    /// co-hosted regions become merge candidates. Keep this well under
    /// [`SplitConfig::threshold_bytes`] or a freshly merged region would
    /// immediately re-split (an oscillation, not a rebalance).
    pub threshold_bytes: usize,
    /// How often hosted regions are checked for merge candidacy. Fixed
    /// phase — no RNG jitter (see the compaction timer note).
    pub check_interval: SimDuration,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            enabled: false,
            threshold_bytes: 32 << 20,
            check_interval: SimDuration::from_secs(5),
        }
    }
}

/// Shared observability for online region merges (all handles clone
/// cheaply and share state, like [`SplitStats`]).
#[derive(Clone, Default, Debug)]
pub struct MergeStats {
    /// Merge candidacies accepted (a pending merge was set up).
    pub considered: Counter,
    /// Merge-intent requests sent to the master.
    pub intents_requested: Counter,
    /// Intents whose execution reached the reference-building phase.
    pub executing: Counter,
    /// Merges flipped: both daughters atomically replaced by the merged
    /// region.
    pub completed: Counter,
    /// Granted intents abandoned server-side (reference marker writes
    /// failed) plus denied requests; master-side rollbacks are counted at
    /// the master.
    pub aborted: Counter,
}

/// Shared observability for online region splits (all handles clone
/// cheaply and share state, like [`CompactionStats`]).
#[derive(Clone, Default, Debug)]
pub struct SplitStats {
    /// Split candidacies accepted (a pending split was set up).
    pub considered: Counter,
    /// Split-intent requests sent to the master.
    pub intents_requested: Counter,
    /// Intents whose execution reached the reference-building phase.
    pub executing: Counter,
    /// Splits flipped: the parent was atomically replaced by daughters.
    pub completed: Counter,
    /// Granted intents abandoned server-side (reference marker writes
    /// failed); master-side rollbacks are counted at the master.
    pub aborted: Counter,
    /// Cumulative foreground service nanoseconds charged per hosted
    /// region — the master's load-aware placement signal and the
    /// per-region load gauge the split threshold reasoning builds on.
    pub region_load: GaugeMap,
}

impl Default for RegionServerConfig {
    fn default() -> Self {
        RegionServerConfig {
            handlers: 2,
            base_service: SimDuration::from_micros(40),
            read_service: SimDuration::from_micros(700),
            // Calibrated for a datanode co-located with the server (the
            // paper's layout): a cache miss reads a block that is likely
            // in the local datanode's page cache, not cold disk.
            block_fetch_penalty: SimDuration::from_micros(900),
            write_service_per_mutation: SimDuration::from_micros(500),
            wal_mode: WalSyncMode::Async,
            wal_sync_interval: SimDuration::from_millis(50),
            memstore_flush_bytes: 48 << 20,
            flush_check_interval: SimDuration::from_secs(1),
            sync_mode_handler_hold: SimDuration::from_millis(2),
            block_cache_capacity: 700_000,
            coord_heartbeat_interval: SimDuration::from_millis(500),
            coord_session_timeout: SimDuration::from_millis(1800),
            storefile_read_service: SimDuration::from_micros(120),
            filter_probe_service: SimDuration::from_micros(2),
            bloom_filters: true,
            verify_filters: false,
            compaction: CompactionConfig::default(),
            split: SplitConfig::default(),
            merge: MergeConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }
}

/// Shared observability for the bloom-filtered point-get read path (all
/// handles clone cheaply and share state, like [`CompactionStats`]).
///
/// Probes, skips and consultations are recorded where the read actually
/// executes, so the counters describe real behavior, not the up-front
/// cost estimate. Scans are not metered here (they use range pruning
/// only).
#[derive(Clone, Default, Debug)]
pub struct FilterStats {
    /// Bloom-filter probes performed (one per range-covering file per
    /// point get, while filters are enabled).
    pub probes: Counter,
    /// Files excluded from a point get by key-range pruning.
    pub range_skips: Counter,
    /// Files excluded from a point get by a negative bloom probe.
    pub filter_skips: Counter,
    /// Consulted files that turned out not to hold the key at all — the
    /// filter's false positives (measurable because the registry holds
    /// real bytes, so the exact membership check is cheap).
    pub false_positives: Counter,
    /// Filter exclusions that were wrong (requires
    /// `RegionServerConfig::verify_filters`). Must stay zero: a false
    /// negative would silently lose a committed version from reads.
    pub false_negatives: Counter,
    /// Store files actually consulted by point gets.
    pub files_consulted: Counter,
    /// Current bytes of bloom-filter metadata across the server's hosted
    /// store files (including flushing snapshots).
    pub filter_bytes: Gauge,
}

struct RegionState {
    desc: RegionDescriptor,
    memstore: MemStore,
    /// Snapshot currently being flushed (still readable).
    flushing: Option<Rc<StoreFileData>>,
    storefiles: Vec<Rc<StoreFileData>>,
    /// LSM level per store-file path; paths absent from the map are
    /// level 0 (flush outputs, bulk loads, files adopted at open — only
    /// compaction outputs placed below L0 need an entry).
    file_levels: HashMap<String, u32>,
    /// Recovered-edits files replayed into the memstore at open; deleted
    /// once a flush makes their contents durable in a store file.
    recovered_paths: Vec<String>,
    online: bool,
    flush_in_progress: bool,
    compaction_in_progress: bool,
    /// A structural operation (split or merge) on this region is pending
    /// or executing: flush checks and new compactions skip it so the
    /// file set stays stable until the flip (requests keep being served
    /// normally throughout).
    splitting: bool,
}

impl RegionState {
    /// The LSM level of the file at `path` (level 0 unless a compaction
    /// placed it deeper).
    fn level_of(&self, path: &str) -> u32 {
        self.file_levels.get(path).copied().unwrap_or(0)
    }

    /// The flush-stall check's cheap file-count summary (runs every
    /// flush tick, so no per-file metadata is materialized).
    fn stall_signal(&self) -> StallSignal {
        StallSignal {
            total_files: self.storefiles.len(),
            l0_files: self
                .storefiles
                .iter()
                .filter(|sf| self.level_of(sf.path()) == 0)
                .count(),
        }
    }

    /// The policy's view of this region's durable file stack (the
    /// flushing snapshot is excluded — it is not compactable yet).
    fn file_metas(&self) -> Vec<FileMeta> {
        self.storefiles
            .iter()
            .map(|sf| FileMeta {
                path: sf.path().to_owned(),
                bytes: sf.total_bytes(),
                entries: sf.len(),
                level: self.level_of(sf.path()),
                key_range: sf
                    .key_range()
                    .map(|(a, z)| (Bytes::copy_from_slice(a), Bytes::copy_from_slice(z))),
            })
            .collect()
    }
}

/// A compaction the policy planned, resolved to paths so it survives the
/// gap between the candidacy check and the handler slot becoming free.
struct PlannedCompaction {
    input_paths: Vec<String>,
    output_level: u32,
    max_output_bytes: Option<usize>,
}

/// The server-local state machine of one in-flight split (one at a time
/// per server — splits are rare, metadata-only events).
struct PendingSplit {
    region: RegionId,
    split_key: Bytes,
    /// Whether the pre-split flush round has been issued.
    flush_issued: bool,
    /// Whether the intent request has been sent to the master.
    intent_sent: bool,
}

/// Everything a granted split carries between the reference-building
/// phase, the marker writes and the flip.
struct SplitWork {
    region: RegionId,
    split_key: Bytes,
    bottom: RegionId,
    top: RegionId,
    parent_desc: RegionDescriptor,
    /// Daughter reference files with the level inherited from their
    /// parent file (levels ≥ 1 stay pairwise disjoint after clipping).
    bottom_files: Vec<(Rc<StoreFileData>, u32)>,
    top_files: Vec<(Rc<StoreFileData>, u32)>,
    /// `(marker path, marker content)` per reference, written to the
    /// filesystem before the flip so a failover can list the daughters'
    /// file sets.
    markers: Vec<(String, Bytes)>,
}

/// The server-local state machine of one in-flight merge (one at a time
/// per server, like [`PendingSplit`]).
struct PendingMerge {
    left: RegionId,
    right: RegionId,
    /// Whether the pre-merge flush round has been issued for both
    /// daughters.
    flush_issued: bool,
    /// Whether the intent request has been sent to the master.
    intent_sent: bool,
}

/// Everything a granted merge carries between the reference-building
/// phase, the marker writes and the flip (the [`SplitWork`] mirror).
struct MergeWork {
    left: RegionId,
    right: RegionId,
    merged: RegionId,
    merged_desc: RegionDescriptor,
    /// The merged region's reference files with the level inherited from
    /// their source file (the daughters' ranges are disjoint, so levels
    /// ≥ 1 stay pairwise disjoint after the union).
    files: Vec<(Rc<StoreFileData>, u32)>,
    /// `(marker path, marker content)` per reference, written to the
    /// filesystem before the flip so a failover can list the merged
    /// region's file set.
    markers: Vec<(String, Bytes)>,
}

/// The durable content of a reference marker file: which physical file
/// backs the reference and the clip range. (The simulation resolves
/// references through the shared registry; the marker's bytes exist so
/// the daughter directory listing — what a failover reads — is honest.)
fn encode_ref_marker(r: &StoreFileData) -> Bytes {
    let mut enc = crate::codec::Encoder::new();
    enc.put_bytes(r.backing_path().as_bytes());
    enc.put_u32(r.region().0);
    match r.key_range() {
        Some((min, max)) => {
            enc.put_u8(1);
            enc.put_bytes(min);
            enc.put_bytes(max);
        }
        None => enc.put_u8(0),
    }
    enc.finish()
}

/// A serialized memstore image shipped in a full-state sync:
/// `(row, column, version, value-or-tombstone)` per cell version.
pub type MemstoreSnapshot = Vec<(Bytes, Bytes, Timestamp, Option<Bytes>)>;

/// One region's worth of a range scan: the cells served plus the serving
/// region's exclusive end bound. The client's cross-region continuation
/// ([`crate::StoreClient::scan`]) uses `region_end` as the next leg's
/// cursor, so the resume key is always *server truth* — whatever region
/// actually served the page, even if the client routed here through a
/// stale map while a split or merge was in flight.
#[derive(Clone, Debug)]
pub struct ScanPage {
    /// Newest visible version per `(row, column)` at the scan snapshot,
    /// sorted, tombstones elided, truncated to the requested limit.
    pub cells: Vec<(Bytes, Bytes, VersionedValue)>,
    /// Exclusive end key of the region that served this page (`None` =
    /// the region extends to the end of the table).
    pub region_end: Option<Bytes>,
}

/// A backup's reply to a shipped record or sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplAck {
    /// Applied; the lane is caught up through this sequence number.
    Applied(u64),
    /// The record did not extend the shadow contiguously (ships were
    /// lost); the lane needs a full re-sync.
    Gap(u64),
    /// The sender's epoch is older than the backup's: a newer replica
    /// group exists, the sender must fence itself. Carries the epoch the
    /// backup holds.
    Stale(u64),
}

/// Primary-side state of one backup lane.
struct ReplLane {
    backup: ServerId,
    handle: Weak<RegionServer>,
    node: NodeId,
    /// Highest sequence number the backup has acked.
    acked_seq: u64,
    /// `seq -> payload bytes` of shipped-but-unacked records.
    pending: std::collections::BTreeMap<u64, usize>,
    backlog_bytes: usize,
    /// In sync: data ships flow and client acks gate on this lane. A
    /// lane starts out of sync and is brought in by a full-state sync.
    synced: bool,
    /// An unsync report to the master is in flight; gates still hold
    /// until the master acks (the report is the fencing point — a
    /// primary partitioned from the master can never un-gate).
    drop_pending: bool,
    /// Sequence number of the in-flight full-state sync, if any. Its
    /// `Applied` ack is what flips an out-of-sync lane back in (a late
    /// ack for an ordinary data ship must not).
    sync_seq: Option<u64>,
}

/// Fires every gate at the front of the queue whose acks are all in,
/// strictly in sequence order (the client-visible commit order must
/// match the ship order). Returns the finish closures for the caller to
/// invoke *after* releasing the `repl` borrow.
fn drain_ready_gates(group: &mut ReplGroup) -> Vec<Box<dyn FnOnce(Result<(), StoreError>)>> {
    let mut finishes = Vec::new();
    while let Some((&seq, gate)) = group.gates.iter().next() {
        if !gate.waiting.is_empty() || gate.finish.is_none() {
            break;
        }
        let gate = group.gates.remove(&seq).expect("front gate present");
        finishes.push(gate.finish.expect("checked above"));
    }
    finishes
}

/// One client ack (plus its T_P bookkeeping) gated on backup acks.
struct ReplGate {
    /// Lanes whose ack is still outstanding.
    waiting: Vec<ServerId>,
    /// Runs with `Ok` once every lane acked (in sequence order), or with
    /// `Err(WrongRegion)` when the group is fenced.
    finish: Option<Box<dyn FnOnce(Result<(), StoreError>)>>,
}

/// Primary-side replication state of one hosted region.
struct ReplGroup {
    epoch: u64,
    next_seq: u64,
    lanes: Vec<ReplLane>,
    gates: std::collections::BTreeMap<u64, ReplGate>,
    /// A backup holds a newer epoch: this server is no longer the
    /// rightful primary. The region was marked offline; all pending
    /// gates failed with `WrongRegion`.
    fenced: bool,
}

/// Backup-side shadow of a region hosted elsewhere.
struct ShadowRegion {
    desc: RegionDescriptor,
    epoch: u64,
    /// Next sequence number expected from the primary.
    next_seq: u64,
    memstore: MemStore,
    /// Durable store-file paths of the primary's file set, refreshed by
    /// each full-state sync (resolved through the shared registry at
    /// promotion).
    storefile_paths: Vec<String>,
    /// In sync with the primary: contiguous ship stream since the last
    /// full-state sync. Only a synced shadow is eligible for promotion.
    synced: bool,
    /// A split intent the primary propagated (parent about to split).
    /// Promotion discards it — the master rolls intents back first.
    split_intent: Option<(RegionId, RegionId)>,
}

#[derive(Default)]
struct ReplState {
    /// Primary-side groups, keyed by hosted region.
    groups: HashMap<RegionId, ReplGroup>,
    /// Backup-side shadows, keyed by region.
    shadows: HashMap<RegionId, ShadowRegion>,
}

/// One region server process. Shared via `Rc`; all requests arrive as
/// events scheduled by [`crate::StoreClient`] or the master.
pub struct RegionServer {
    sim: Sim,
    net: Rc<Network>,
    node: NodeId,
    id: ServerId,
    cfg: RegionServerConfig,
    handlers: Rc<ServiceQueue>,
    wal: Wal,
    cache: RefCell<BlockCache>,
    registry: Rc<StoreFileRegistry>,
    dfs: DfsClient,
    regions: RefCell<HashMap<RegionId, RegionState>>,
    hooks: RefCell<Rc<dyn RecoveryHooks>>,
    alive: Cell<bool>,
    timers: RefCell<Vec<TimerHandle>>,
    storefile_counter: Cell<u64>,
    gets: Counter,
    multi_gets: Counter,
    puts: Counter,
    scans: Counter,
    not_serving: Counter,
    /// Per-RPC trace journal (queue wait + service breakdown per request;
    /// [`Journal::disabled`] until the cluster wiring installs a shared
    /// one via [`RegionServer::set_journals`]).
    trace: RefCell<Journal>,
    /// Failure-event journal: flush stalls, compaction lifecycle, split
    /// protocol transitions (shared with the cluster like `trace`).
    events: RefCell<Journal>,
    compaction_stats: CompactionStats,
    filter_stats: FilterStats,
    /// Runtime master switch for bloom probes (initialized from
    /// [`RegionServerConfig::bloom_filters`]).
    bloom_enabled: Cell<bool>,
    /// The active compaction policy (initialized from
    /// [`CompactionConfig::policy`]; swappable at runtime).
    policy: RefCell<Rc<dyn CompactionPolicy>>,
    /// Backpressure deficit bank: one token accrues per check tick that
    /// defers a due merge; at `max_deferrals` the merge runs regardless.
    compaction_deficit: Cell<u32>,
    /// Handler busy-ns at the last compaction check (windowed
    /// utilization sampling).
    sched_busy_ns: Cell<u64>,
    /// Sim-instant of the last compaction check, in nanoseconds.
    sched_checked_ns: Cell<u64>,
    /// Total service-ns this server itself submitted as background work
    /// (merges, recovery tracking). Subtracted from the utilization
    /// sample so the scheduler measures *foreground* pressure — one
    /// admitted large merge must not make the next windows read as
    /// saturated and defer merges out of genuinely idle gaps.
    background_ns: Cell<u64>,
    /// `background_ns` at the last compaction check.
    sched_background_ns: Cell<u64>,
    /// Coordination handle (set by [`RegionServer::start`]); compaction
    /// uses it as a fencing check before destroying retired files.
    coord: RefCell<Option<CoordClient>>,
    /// The master-side split coordination surface (installed by the
    /// cluster wiring; splits are inert without it).
    split_coord: RefCell<Option<Rc<dyn SplitCoordinator>>>,
    /// The in-flight split, if any.
    pending_split: RefCell<Option<PendingSplit>>,
    split_stats: SplitStats,
    /// The in-flight merge, if any.
    pending_merge: RefCell<Option<PendingMerge>>,
    merge_stats: MergeStats,
    /// The region currently being closed for a master-driven move, if
    /// any (one at a time per server, like splits and merges).
    pending_move: RefCell<Option<RegionId>>,
    /// Supplies the MVCC garbage-collection watermark (the transaction
    /// manager's oldest active snapshot). `None` — e.g. a vanilla cluster
    /// without the transactional tier — degrades to watermark zero:
    /// compaction still merges files but garbage-collects nothing.
    gc_watermark: RefCell<Option<Rc<dyn Fn() -> GcWatermark>>>,
    /// Primary/backup replication state (groups this server is primary
    /// for, shadows it keeps as a backup).
    repl: RefCell<ReplState>,
    repl_stats: ReplicationStats,
    /// The master-side replication coordination surface (installed by
    /// the cluster wiring; lane-drop reports are inert without it).
    repl_coord: RefCell<Option<Rc<dyn crate::hooks::ReplicationCoordinator>>>,
    self_weak: RefCell<Weak<RegionServer>>,
}

impl fmt::Debug for RegionServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegionServer")
            .field("id", &self.id)
            .field("node", &self.node)
            .field("regions", &self.regions.borrow().len())
            .field("alive", &self.alive.get())
            .field("gets", &self.gets.get())
            .field("puts", &self.puts.get())
            .finish()
    }
}

impl RegionServer {
    /// Creates a region server on `node`. `dfs` must be a client bound to
    /// the same node. The WAL file is created at `/wal/rs{id}`.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        node: NodeId,
        id: ServerId,
        cfg: RegionServerConfig,
        dfs: DfsClient,
        registry: Rc<StoreFileRegistry>,
    ) -> Rc<RegionServer> {
        let wal = Wal::new(sim, &dfs, format!("/wal/{id}"));
        let server = Rc::new(RegionServer {
            sim: sim.clone(),
            net: Rc::clone(net),
            node,
            id,
            cfg,
            handlers: ServiceQueue::new(sim, cfg.handlers),
            wal,
            cache: RefCell::new(BlockCache::new(cfg.block_cache_capacity)),
            registry,
            dfs,
            regions: RefCell::new(HashMap::new()),
            hooks: RefCell::new(Rc::new(NoopHooks)),
            alive: Cell::new(true),
            timers: RefCell::new(Vec::new()),
            storefile_counter: Cell::new(0),
            gets: Counter::new(),
            multi_gets: Counter::new(),
            puts: Counter::new(),
            scans: Counter::new(),
            not_serving: Counter::new(),
            trace: RefCell::new(Journal::disabled()),
            events: RefCell::new(Journal::disabled()),
            compaction_stats: CompactionStats::default(),
            filter_stats: FilterStats::default(),
            bloom_enabled: Cell::new(cfg.bloom_filters),
            policy: RefCell::new(compaction::policy_for(cfg.compaction.policy)),
            compaction_deficit: Cell::new(0),
            sched_busy_ns: Cell::new(0),
            sched_checked_ns: Cell::new(sim.now().nanos()),
            background_ns: Cell::new(0),
            sched_background_ns: Cell::new(0),
            coord: RefCell::new(None),
            split_coord: RefCell::new(None),
            pending_split: RefCell::new(None),
            split_stats: SplitStats::default(),
            pending_merge: RefCell::new(None),
            merge_stats: MergeStats::default(),
            pending_move: RefCell::new(None),
            gc_watermark: RefCell::new(None),
            repl: RefCell::new(ReplState::default()),
            repl_stats: ReplicationStats::default(),
            repl_coord: RefCell::new(None),
            self_weak: RefCell::new(Weak::new()),
        });
        *server.self_weak.borrow_mut() = Rc::downgrade(&server);
        server
    }

    /// Starts background tasks: the liveness session with the coordination
    /// service, the async WAL sync timer and the memstore flush checker.
    pub fn start(self: &Rc<Self>, coord: &CoordClient) {
        *self.coord.borrow_mut() = Some(coord.clone());
        // Liveness: ephemeral znode kept alive by heartbeat touches.
        let id = self.id;
        let coord2 = coord.clone();
        let weak = Rc::downgrade(self);
        coord.create_session(self.cfg.coord_session_timeout, move |sid| {
            let Some(server) = weak.upgrade() else { return };
            coord2.create(&format!("/live/servers/{id}"), Bytes::new(), Some(sid));
            let coord3 = coord2.clone();
            let weak2 = Rc::downgrade(&server);
            let timer = every_from(
                &server.sim,
                server.cfg.coord_heartbeat_interval.mul_f64(0.5),
                server.cfg.coord_heartbeat_interval,
                move || {
                    if weak2.upgrade().is_some() {
                        coord3.touch(sid);
                    }
                },
            );
            server.timers.borrow_mut().push(timer);
        });

        // Async WAL sync.
        if self.cfg.wal_mode == WalSyncMode::Async {
            let wal = self.wal.clone();
            let weak = Rc::downgrade(self);
            let timer = every_from(
                &self.sim,
                // lint:allow(CD004, reason = "WAL sync phase stagger draws from the seeded sim RNG; per-server desync is intended and pinned baselines include this draw")
                self.sim.jitter(self.cfg.wal_sync_interval, 0.5),
                self.cfg.wal_sync_interval,
                move || {
                    if weak.upgrade().is_some() {
                        wal.sync(|| {});
                    }
                },
            );
            self.timers.borrow_mut().push(timer);
        }

        // Memstore flush checks.
        let weak = Rc::downgrade(self);
        let timer = every_from(
            &self.sim,
            // lint:allow(CD004, reason = "flush check phase stagger draws from the seeded sim RNG; per-server desync is intended and pinned baselines include this draw")
            self.sim.jitter(self.cfg.flush_check_interval, 0.5),
            self.cfg.flush_check_interval,
            move || {
                if let Some(server) = weak.upgrade() {
                    server.check_flushes();
                }
            },
        );
        self.timers.borrow_mut().push(timer);

        // Background compaction checks. The phase is fixed (no RNG
        // jitter): drawing from the shared simulation RNG here would
        // shift the random stream of every run that merely *enables*
        // compaction, perturbing previously calibrated schedules.
        if self.cfg.compaction.enabled {
            let weak = Rc::downgrade(self);
            let timer = every_from(
                &self.sim,
                self.cfg.compaction.check_interval,
                self.cfg.compaction.check_interval,
                move || {
                    if let Some(server) = weak.upgrade() {
                        server.check_compactions();
                    }
                },
            );
            self.timers.borrow_mut().push(timer);
        }

        // Online split checks. Fixed phase, no RNG jitter, for the same
        // determinism reason as the compaction timer.
        if self.cfg.split.enabled {
            let weak = Rc::downgrade(self);
            let timer = every_from(
                &self.sim,
                self.cfg.split.check_interval,
                self.cfg.split.check_interval,
                move || {
                    if let Some(server) = weak.upgrade() {
                        server.check_splits();
                    }
                },
            );
            self.timers.borrow_mut().push(timer);
        }

        // Online merge checks. Fixed phase, no RNG jitter, for the same
        // determinism reason as the compaction timer.
        if self.cfg.merge.enabled {
            let weak = Rc::downgrade(self);
            let timer = every_from(
                &self.sim,
                self.cfg.merge.check_interval,
                self.cfg.merge.check_interval,
                move || {
                    if let Some(server) = weak.upgrade() {
                        server.check_merges();
                    }
                },
            );
            self.timers.borrow_mut().push(timer);
        }

        // Replication re-sync checks: ship full region state to
        // out-of-sync backup lanes. Fixed phase, no RNG jitter, for the
        // same determinism reason as the compaction timer.
        if self.cfg.replication.enabled {
            let weak = Rc::downgrade(self);
            let timer = every_from(
                &self.sim,
                self.cfg.replication.resync_interval,
                self.cfg.replication.resync_interval,
                move || {
                    if let Some(server) = weak.upgrade() {
                        server.check_resyncs();
                    }
                },
            );
            self.timers.borrow_mut().push(timer);
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The machine the server runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the process is alive.
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Installs the recovery middleware's hooks.
    pub fn set_hooks(&self, hooks: Rc<dyn RecoveryHooks>) {
        *self.hooks.borrow_mut() = hooks;
    }

    /// The server's write-ahead log (the recovery middleware syncs it on
    /// its heartbeat, per Algorithm 3).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Installs the source of the MVCC garbage-collection watermark
    /// (typically the transaction manager's oldest active snapshot).
    /// Without one, compaction merges files but drops no versions.
    pub fn set_gc_watermark_source(&self, source: Rc<dyn Fn() -> GcWatermark>) {
        *self.gc_watermark.borrow_mut() = Some(source);
    }

    /// Compaction observability: counters and the read-amplification
    /// gauge (shared handles; clone freely).
    pub fn compaction_stats(&self) -> &CompactionStats {
        &self.compaction_stats
    }

    /// Point-get filter observability: probes, skips, false positives
    /// and the current filter-metadata footprint (shared handles; clone
    /// freely).
    pub fn filter_stats(&self) -> &FilterStats {
        &self.filter_stats
    }

    /// Split observability: candidacies, intents, completions and the
    /// per-region load gauges (shared handles; clone freely).
    pub fn split_stats(&self) -> &SplitStats {
        &self.split_stats
    }

    /// Merge observability: candidacies, intents, completions (shared
    /// handles; clone freely).
    pub fn merge_stats(&self) -> &MergeStats {
        &self.merge_stats
    }

    /// Installs the master's split coordination surface (cluster wiring;
    /// without one, split candidacy checks never fire an intent).
    pub fn set_split_coordinator(&self, coord: Rc<dyn SplitCoordinator>) {
        *self.split_coord.borrow_mut() = Some(coord);
    }

    /// Installs the cluster-shared trace and failure-event journals.
    /// Until called, both are [`Journal::disabled`] and recording is a
    /// no-op (standalone servers, unit tests).
    pub fn set_journals(&self, trace: Journal, events: Journal) {
        *self.trace.borrow_mut() = trace;
        *self.events.borrow_mut() = events;
    }

    /// Adopts this server's metric handles into `registry` under
    /// `store.*{server=<id>}` keys: request counters, the filter and
    /// compaction statistics (per-level profiles under a `level=` slot
    /// label) and the split statistics (per-region load under a
    /// `region=` key label). Cluster wiring; call once per server.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        let sid = self.id.to_string();
        let labels: &[(&str, &str)] = &[("server", sid.as_str())];
        let c = |name: &str, counter: &Counter| registry.register_counter(name, labels, counter);
        c("store.gets", &self.gets);
        c("store.multi_gets", &self.multi_gets);
        c("store.puts", &self.puts);
        c("store.scans", &self.scans);
        c("store.not_serving", &self.not_serving);
        let f = &self.filter_stats;
        c("store.filter.probes", &f.probes);
        c("store.filter.range_skips", &f.range_skips);
        c("store.filter.filter_skips", &f.filter_skips);
        c("store.filter.false_positives", &f.false_positives);
        c("store.filter.false_negatives", &f.false_negatives);
        c("store.filter.files_consulted", &f.files_consulted);
        registry.register_gauge("store.filter.bytes", labels, &f.filter_bytes);
        let k = &self.compaction_stats;
        c("store.compaction.started", &k.started);
        c("store.compaction.completed", &k.completed);
        c("store.compaction.bytes_rewritten", &k.bytes_rewritten);
        c("store.compaction.versions_dropped", &k.versions_dropped);
        c("store.compaction.files_retired", &k.files_retired);
        c("store.compaction.deletes_confirmed", &k.deletes_confirmed);
        c(
            "store.compaction.filter_bytes_dropped",
            &k.filter_bytes_dropped,
        );
        c(
            "store.compaction.filter_bytes_created",
            &k.filter_bytes_created,
        );
        c("store.compaction.deferred", &k.deferred);
        c("store.compaction.forced", &k.forced);
        c("store.compaction.flush_stalls", &k.flush_stalls);
        c("store.compaction.stall_ns", &k.stall_ns);
        registry.register_gauge("store.read_amplification", labels, &k.read_amplification);
        registry.register_vec("store.level.files", labels, "level", &k.level_files);
        registry.register_vec("store.level.bytes", labels, "level", &k.level_bytes);
        let s = &self.split_stats;
        c("store.split.considered", &s.considered);
        c("store.split.intents_requested", &s.intents_requested);
        c("store.split.executing", &s.executing);
        c("store.split.completed", &s.completed);
        c("store.split.aborted", &s.aborted);
        registry.register_map("store.region.load_ns", labels, "region", &s.region_load);
        let m = &self.merge_stats;
        c("store.merge.considered", &m.considered);
        c("store.merge.intents_requested", &m.intents_requested);
        c("store.merge.executing", &m.executing);
        c("store.merge.completed", &m.completed);
        c("store.merge.aborted", &m.aborted);
        let r = &self.repl_stats;
        c("store.repl.ships", &r.ships);
        c("store.repl.ship_bytes", &r.ship_bytes);
        c("store.repl.acks", &r.acks);
        c("store.repl.nacks", &r.nacks);
        c("store.repl.syncs", &r.syncs);
        c("store.repl.applied", &r.applied);
        c("store.repl.fences", &r.fences);
        c("store.repl.fenced", &r.fenced);
        c("store.repl.lane_drops", &r.lane_drops);
        registry.register_gauge("store.repl.backlog_bytes", labels, &r.backlog_bytes);
        registry.register_gauge("store.repl.lag", labels, &r.lag);
    }

    /// Cumulative foreground service nanoseconds across this server's
    /// hosted regions — the master's load-aware placement signal.
    pub fn service_load_ns(&self) -> u64 {
        self.split_stats.region_load.total()
    }

    /// Cumulative foreground service nanoseconds charged to `region`.
    pub fn region_load_ns(&self, region: RegionId) -> u64 {
        self.split_stats.region_load.get(region.0 as u64)
    }

    /// The descriptor of a hosted region (recovery replay filters
    /// write-sets by the *descriptor's* key range, not by a possibly
    /// stale region map — after an online split the two can disagree).
    pub fn region_descriptor(&self, region: RegionId) -> Option<RegionDescriptor> {
        self.regions.borrow().get(&region).map(|st| st.desc.clone())
    }

    /// Attributes foreground service time to the region that pays it.
    fn charge_region_load(&self, region: RegionId, service: SimDuration) {
        self.split_stats
            .region_load
            .add(region.0 as u64, service.nanos());
    }

    /// Enables or disables bloom probing on point gets at runtime (the
    /// benchmarks' A/B switch — the store-file stack stays identical
    /// across the toggle, unlike rebuilding a cluster with a different
    /// config).
    pub fn set_bloom_filters(&self, enabled: bool) {
        self.bloom_enabled.set(enabled);
    }

    /// Whether bloom probing on point gets is currently enabled.
    pub fn bloom_filters_enabled(&self) -> bool {
        self.bloom_enabled.get()
    }

    /// Switches the compaction policy at runtime (the benches' A/B
    /// switch, like [`RegionServer::set_bloom_filters`]). Policies are
    /// stateless over the current file stack, so the switch simply
    /// changes what the next candidacy check decides; in-flight merges
    /// finish under their already-planned placement. Files a previous
    /// policy placed on deeper levels keep their level — the size-tiered
    /// policy ignores levels, and a switch back to leveled resumes from
    /// the recorded ones.
    pub fn set_compaction_policy(&self, kind: CompactionPolicyKind) {
        *self.policy.borrow_mut() = compaction::policy_for(kind);
    }

    /// The compaction policy currently deciding candidacy.
    pub fn compaction_policy(&self) -> CompactionPolicyKind {
        self.policy.borrow().kind()
    }

    /// Per-level `(file count, bytes)` across this server's hosted
    /// regions, indexed by LSM level (slot 0 includes flushing
    /// snapshots). Size-tiered keeps everything in slot 0.
    pub fn level_profile(&self) -> Vec<(u64, u64)> {
        let files = self.compaction_stats.level_files.snapshot();
        let bytes = self.compaction_stats.level_bytes.snapshot();
        files.into_iter().zip(bytes).collect()
    }

    /// Whether `region` currently has a compaction in flight.
    pub fn compaction_in_progress(&self, region: RegionId) -> bool {
        self.regions
            .borrow()
            .get(&region)
            .map(|st| st.compaction_in_progress)
            .unwrap_or(false)
    }

    /// Whether `region` currently has an online split in flight.
    pub fn split_in_progress(&self, region: RegionId) -> bool {
        self.regions
            .borrow()
            .get(&region)
            .map(|st| st.splitting)
            .unwrap_or(false)
    }

    /// Crash-stop failure: the process dies, the network drops its
    /// traffic, timers stop, the coordination session expires on its own.
    /// In-memory state (memstores, WAL buffer) is lost.
    pub fn crash(&self) {
        self.alive.set(false);
        self.net.crash(self.node);
        for t in self.timers.borrow().iter() {
            t.cancel();
        }
        self.timers.borrow_mut().clear();
        // Shadow memstores and primary-side lane state are in-memory
        // state: gone with the process.
        let mut repl = self.repl.borrow_mut();
        repl.groups.clear();
        repl.shadows.clear();
    }

    /// Ids of regions currently hosted (online or recovering).
    pub fn hosted_regions(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self.regions.borrow().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether `region` is hosted here and online.
    pub fn region_online(&self, region: RegionId) -> bool {
        self.regions
            .borrow()
            .get(&region)
            .map(|r| r.online)
            .unwrap_or(false)
    }

    /// Block-cache hit rate so far (Fig. 3's warm-up indicator).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.borrow().hit_rate()
    }

    /// Number of gets served (batched reads count one per cell, so the
    /// per-get filter statistics stay comparable across both paths).
    pub fn gets_served(&self) -> u64 {
        self.gets.get()
    }

    /// Number of batched-read requests ([`RegionServer::handle_multi_get`]
    /// messages) served.
    pub fn multi_gets_served(&self) -> u64 {
        self.multi_gets.get()
    }

    /// Number of write batches applied.
    pub fn puts_applied(&self) -> u64 {
        self.puts.get()
    }

    /// Number of scan legs served ([`RegionServer::handle_scan`] pages;
    /// a cross-region scan counts once per region walked).
    pub fn scans_served(&self) -> u64 {
        self.scans.get()
    }

    /// Number of requests rejected with `NotServing`.
    pub fn not_serving_count(&self) -> u64 {
        self.not_serving.get()
    }

    /// Current handler queue length (for overload diagnostics).
    pub fn handler_queue_len(&self) -> usize {
        self.handlers.queue_len()
    }

    /// Submits background work to the request handlers (used by the
    /// recovery middleware to charge its tracking CPU cost against the
    /// same resource that serves requests — the contention the paper
    /// measures in Fig. 2b).
    pub fn submit_background(self: &Rc<Self>, service: SimDuration, run: impl FnOnce() + 'static) {
        if !self.alive.get() {
            return;
        }
        // Attributed as background for the utilization sample (charged
        // at submit while the queue charges at start — close enough for
        // a scheduling signal, and always in the same direction).
        self.background_ns
            .set(self.background_ns.get() + service.nanos());
        let this = Rc::clone(self);
        self.handlers.submit(service, move || {
            if this.alive.get() {
                run();
            }
        });
    }

    // ------------------------------------------------------------------
    // Request handling (invoked at this node via network events)
    // ------------------------------------------------------------------

    /// Serves a versioned read at `snapshot`.
    pub fn handle_get(
        self: &Rc<Self>,
        row: Bytes,
        column: Bytes,
        snapshot: Timestamp,
        reply: impl FnOnce(Result<Option<VersionedValue>, StoreError>) + 'static,
    ) {
        if !self.alive.get() {
            return;
        }
        let region_id = {
            let regions = self.regions.borrow();
            // Deterministic choice when more than one hosted region
            // transiently covers `row` (e.g. an offline parent beside an
            // online daughter mid-split): prefer the online region,
            // tie-break by id — HashMap iteration order must never pick
            // the reply (same policy as `handle_scan`).
            let mut covering: Vec<_> = regions
                .values()
                .filter(|st| st.desc.contains(&row))
                .map(|st| (st.desc.id, st.online))
                .collect();
            covering.sort_unstable_by_key(|(id, _)| *id);
            match covering
                .iter()
                .find(|(_, online)| *online)
                .or_else(|| covering.first())
            {
                Some((id, true)) => *id,
                Some((id, false)) => {
                    self.not_serving.inc();
                    reply(Err(StoreError::NotServing(*id)));
                    return;
                }
                None => {
                    self.not_serving.inc();
                    reply(Err(StoreError::RegionUnknown));
                    return;
                }
            }
        };
        // Hit/miss and the consulted-file plan are decided up front; they
        // determine handler occupancy. Key-range pruning is free, each
        // bloom probe on a range-covering file costs
        // `filter_probe_service`, and only files the filter cannot
        // exclude charge the `storefile_read_service` amplification term.
        let (in_memstore, probes, consulted_files) = {
            let regions = self.regions.borrow();
            let st = &regions[&region_id];
            let bloom = self.bloom_enabled.get();
            let mut probes = 0u64;
            let mut consulted = 0usize;
            for sf in st.flushing.iter().chain(st.storefiles.iter()) {
                if !sf.row_in_range(&row) {
                    continue;
                }
                if bloom {
                    probes += 1;
                    if !sf.filter_may_contain(&row, &column) {
                        continue;
                    }
                }
                consulted += 1;
            }
            (
                st.memstore.get(&row, &column, snapshot).is_some(),
                probes,
                consulted,
            )
        };
        let hit = in_memstore || self.cache.borrow_mut().access(region_id, &row);
        // Read amplification: every *consulted* store file beyond the
        // first costs extra handler time. Compaction bounds the file
        // count; range pruning and bloom filters bound how many of those
        // files a point get actually consults.
        let amplification = self.cfg.storefile_read_service
            * consulted_files.saturating_sub(1) as u64
            + self.cfg.filter_probe_service * probes;
        let service = self.cfg.base_service
            + self.cfg.read_service
            + amplification
            + if hit {
                SimDuration::ZERO
            } else {
                self.cfg.block_fetch_penalty
            };
        self.charge_region_load(region_id, service);
        let submitted = self.sim.now();
        let this = Rc::clone(self);
        self.handlers.submit(service, move || {
            if !this.alive.get() {
                return;
            }
            let result = this.lookup(region_id, &row, &column, snapshot);
            if !hit {
                this.cache.borrow_mut().insert(region_id, row.clone());
            }
            this.gets.inc();
            // Span: queue wait is everything between submission and
            // completion that was not this request's own service.
            let now = this.sim.now();
            let queue_ns = (now.nanos() - submitted.nanos()).saturating_sub(service.nanos());
            this.trace.borrow().record(now, "rpc.get", || {
                format!(
                    "server={} region={} queue_ns={} service_ns={} files={} probes={} hit={}",
                    this.id,
                    region_id,
                    queue_ns,
                    service.nanos(),
                    consulted_files,
                    probes,
                    hit
                )
            });
            reply(result);
        });
    }

    fn lookup(
        &self,
        region_id: RegionId,
        row: &[u8],
        column: &[u8],
        snapshot: Timestamp,
    ) -> Result<Option<VersionedValue>, StoreError> {
        let regions = self.regions.borrow();
        let Some(st) = regions.get(&region_id) else {
            return Err(StoreError::NotServing(region_id));
        };
        if !st.online {
            return Err(StoreError::NotServing(region_id));
        }
        let mut best = st.memstore.get(row, column, snapshot);
        let bloom = self.bloom_enabled.get();
        let stats = &self.filter_stats;
        // Range pruning + bloom probe, shared by the flushing snapshot
        // and the durable store files. Returns whether the file must be
        // consulted; records the probe/skip statistics.
        let prune = |sf: &StoreFileData| -> bool {
            if !sf.row_in_range(row) {
                stats.range_skips.inc();
                return false;
            }
            if bloom {
                stats.probes.inc();
                if !sf.filter_may_contain(row, column) {
                    stats.filter_skips.inc();
                    if self.cfg.verify_filters && sf.contains_key(row, column) {
                        stats.false_negatives.inc();
                    }
                    return false;
                }
            }
            true
        };
        let consider = |best: &mut Option<VersionedValue>, sf: &StoreFileData| {
            stats.files_consulted.inc();
            if bloom && !sf.contains_key(row, column) {
                stats.false_positives.inc();
            }
            if let Some(c) = sf.get(row, column, snapshot) {
                if best.as_ref().map(|b| c.ts > b.ts).unwrap_or(true) {
                    *best = Some(c);
                }
            }
        };
        // The flushing snapshot is served from memory while its DFS write
        // is in flight, so it gets no replica-liveness check.
        if let Some(fl) = &st.flushing {
            if prune(fl) {
                consider(&mut best, fl);
            }
        }
        for sf in &st.storefiles {
            if !prune(sf) {
                continue;
            }
            // Honesty check: a consulted store file is only readable
            // while at least one filesystem replica survives (pruned
            // files are not touched, so their replicas need not be).
            // Reference half-files check the *backing* parent file —
            // that is where the bytes physically live.
            let live = self
                .dfs
                .namenode()
                .live_replicas(sf.backing_path())
                .map(|l| !l.is_empty())
                .unwrap_or(false);
            if !live {
                return Err(StoreError::Unavailable(sf.path().to_owned()));
            }
            consider(&mut best, sf);
        }
        Ok(best)
    }

    /// Serves a batch of point reads for one region in a single message
    /// round trip (the batched half of the client's `multi_get`).
    ///
    /// The whole batch occupies one handler slot for the *sum* of its
    /// per-cell service: each cell charges the same read service, range
    /// pruning (free), bloom probes (`filter_probe_service` each) and
    /// per-consulted-file `storefile_read_service` amplification it
    /// would have paid as a lone [`RegionServer::handle_get`] — the
    /// saving is round trips and per-request base cost, not a discount
    /// on the read work itself. Per-cell [`FilterStats`] accounting is
    /// identical to the single-get path.
    ///
    /// Addressing is by region id (like [`RegionServer::handle_multi_put`]):
    /// region ids are never reused, so every row grouped under `region`
    /// by any map epoch lies inside its descriptor. A batch for a
    /// split-away id gets [`StoreError::WrongRegion`] when another hosted
    /// region covers its rows, so the client re-groups by its refreshed
    /// map and retries.
    pub fn handle_multi_get(
        self: &Rc<Self>,
        region: RegionId,
        cells: Vec<(Bytes, Bytes)>,
        snapshot: Timestamp,
        reply: impl FnOnce(Result<Vec<Option<VersionedValue>>, StoreError>) + 'static,
    ) {
        if !self.alive.get() {
            return;
        }
        {
            let regions = self.regions.borrow();
            match regions.get(&region) {
                None => {
                    self.not_serving.inc();
                    let covered = cells
                        .first()
                        .map(|(row, _)| regions.values().any(|st| st.desc.contains(row)))
                        .unwrap_or(false);
                    reply(Err(if covered {
                        StoreError::WrongRegion(region)
                    } else {
                        StoreError::NotServing(region)
                    }));
                    return;
                }
                Some(st) if !st.online => {
                    self.not_serving.inc();
                    reply(Err(StoreError::NotServing(region)));
                    return;
                }
                Some(_) => {}
            }
        }
        // Per-cell consulted-file plan and cache hit/miss, decided up
        // front exactly like `handle_get`; the batch's handler occupancy
        // is the sum of its cells'.
        let mut service = self.cfg.base_service;
        let mut misses: Vec<Bytes> = Vec::new();
        {
            let regions = self.regions.borrow();
            let st = &regions[&region];
            let bloom = self.bloom_enabled.get();
            let mut cache = self.cache.borrow_mut();
            for (row, column) in &cells {
                let mut probes = 0u64;
                let mut consulted = 0usize;
                for sf in st.flushing.iter().chain(st.storefiles.iter()) {
                    if !sf.row_in_range(row) {
                        continue;
                    }
                    if bloom {
                        probes += 1;
                        if !sf.filter_may_contain(row, column) {
                            continue;
                        }
                    }
                    consulted += 1;
                }
                // A row already planned as a miss earlier in this batch
                // is fetched once for the whole batch: later cells on it
                // ride the same block, like sequential gets would hit
                // the cache the first miss populated.
                let hit = st.memstore.get(row, column, snapshot).is_some()
                    || misses.contains(row)
                    || cache.access(region, row);
                service += self.cfg.read_service
                    + self.cfg.storefile_read_service * consulted.saturating_sub(1) as u64
                    + self.cfg.filter_probe_service * probes;
                if !hit {
                    service += self.cfg.block_fetch_penalty;
                    misses.push(row.clone());
                }
            }
        }
        self.charge_region_load(region, service);
        let submitted = self.sim.now();
        let this = Rc::clone(self);
        self.handlers.submit(service, move || {
            if !this.alive.get() {
                return;
            }
            let mut out: Vec<Option<VersionedValue>> = Vec::with_capacity(cells.len());
            for (row, column) in &cells {
                match this.lookup(region, row, column, snapshot) {
                    Ok(v) => out.push(v),
                    Err(e) => {
                        // A partially readable stack fails the whole
                        // batch (same retry the lone get would take).
                        reply(Err(e));
                        return;
                    }
                }
            }
            let miss_count = misses.len();
            for row in misses {
                this.cache.borrow_mut().insert(region, row);
            }
            this.gets.add(cells.len() as u64);
            this.multi_gets.inc();
            let now = this.sim.now();
            let queue_ns = (now.nanos() - submitted.nanos()).saturating_sub(service.nanos());
            this.trace.borrow().record(now, "rpc.multi_get", || {
                format!(
                    "server={} region={} cells={} queue_ns={} service_ns={} misses={}",
                    this.id,
                    region,
                    cells.len(),
                    queue_ns,
                    service.nanos(),
                    miss_count
                )
            });
            reply(Ok(out));
        });
    }

    /// Applies one transaction's mutations for one region (the flush of a
    /// committed write-set portion, or a recovery replay when `replay`).
    ///
    /// Matches Algorithm 3 "On receive": WAL-buffer append, memstore
    /// apply, PQ tracking via the hook, then the ack — immediately in
    /// Async mode, after the filesystem sync in Sync mode.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_multi_put(
        self: &Rc<Self>,
        region: RegionId,
        ts: Timestamp,
        mutations: Vec<Mutation>,
        floor: Option<Timestamp>,
        replay: bool,
        reply: impl FnOnce(Result<(), StoreError>) + 'static,
    ) {
        if !self.alive.get() {
            return;
        }
        {
            let regions = self.regions.borrow();
            match regions.get(&region) {
                None => {
                    self.not_serving.inc();
                    // The region id is unknown here — if a *different*
                    // hosted region covers the batch's rows, the map
                    // changed under the client (an online split replaced
                    // the id); retrying the same id can never succeed, so
                    // tell the client to refresh and re-group.
                    let covered = mutations
                        .first()
                        .map(|m| regions.values().any(|st| st.desc.contains(&m.row)))
                        .unwrap_or(false);
                    reply(Err(if covered {
                        StoreError::WrongRegion(region)
                    } else {
                        StoreError::NotServing(region)
                    }));
                    return;
                }
                Some(st) if !st.online && !replay => {
                    self.not_serving.inc();
                    // A fenced ex-primary can never serve this region
                    // again under its old epoch — send the client to the
                    // map, not into a retry loop.
                    reply(Err(if self.region_fenced(region) {
                        StoreError::WrongRegion(region)
                    } else {
                        StoreError::NotServing(region)
                    }));
                    return;
                }
                Some(_) => {}
            }
        }
        let mut service = self.cfg.base_service
            + self.cfg.write_service_per_mutation * mutations.len().max(1) as u64;
        if self.cfg.wal_mode == WalSyncMode::Sync {
            service += self.cfg.sync_mode_handler_hold;
        }
        self.charge_region_load(region, service);
        let submitted = self.sim.now();
        let this = Rc::clone(self);
        self.handlers.submit(service, move || {
            if !this.alive.get() {
                return;
            }
            let applied = {
                let mut regions = this.regions.borrow_mut();
                match regions.get_mut(&region) {
                    Some(st) => {
                        for m in &mutations {
                            st.memstore.apply_mutation(
                                m.row.clone(),
                                m.column.clone(),
                                ts,
                                &m.kind,
                            );
                        }
                        true
                    }
                    None => false,
                }
            };
            if !applied {
                reply(Err(StoreError::NotServing(region)));
                return;
            }
            let n_mutations = mutations.len();
            // Ship to backup lanes *before* the WAL append consumes the
            // batch. Returns the gate sequence when at least one in-sync
            // lane was shipped; the client ack (and the T_P bookkeeping
            // hook) then waits for every shipped lane's ack — this is
            // what makes `T_P(failed)` a sound promotion floor: nothing
            // at or below it can be missing from an eligible backup.
            let gate_seq = this.ship_to_replicas(region, ts, &mutations);
            let seq = this.wal.append(WalRecord {
                region,
                ts,
                mutations,
            });
            this.puts.inc();
            let now = this.sim.now();
            let queue_ns = (now.nanos() - submitted.nanos()).saturating_sub(service.nanos());
            this.trace.borrow().record(now, "rpc.put", || {
                format!(
                    "server={} region={} mutations={} queue_ns={} service_ns={} replay={}",
                    this.id,
                    region,
                    n_mutations,
                    queue_ns,
                    service.nanos(),
                    replay
                )
            });
            let complete: Box<dyn FnOnce(Result<(), StoreError>)> = {
                let this = Rc::clone(&this);
                Box::new(move |result| match result {
                    Ok(()) => {
                        this.hooks
                            .borrow()
                            .on_write_set_applied(this.id, region, ts, seq, floor);
                        match this.cfg.wal_mode {
                            WalSyncMode::Sync => this.wal.sync_upto(seq, move || reply(Ok(()))),
                            WalSyncMode::Async => reply(Ok(())),
                        }
                    }
                    Err(e) => reply(Err(e)),
                })
            };
            match gate_seq {
                Some(gate_seq) => this.arm_gate(region, gate_seq, complete),
                None => complete(Ok(())),
            }
        });
    }

    /// Serves one page of a snapshot range scan: the newest visible
    /// version per cell in `[start, end)` (end-exclusive, tombstones
    /// elided) *within the hosted region containing `start`*, plus that
    /// region's exclusive end bound as the continuation resume key. The
    /// client stitches pages from consecutive regions into one merged
    /// cross-region result (see [`crate::StoreClient::scan`]).
    pub fn handle_scan(
        self: &Rc<Self>,
        start: Bytes,
        end: Option<Bytes>,
        snapshot: Timestamp,
        limit: usize,
        reply: impl FnOnce(Result<ScanPage, StoreError>) + 'static,
    ) {
        if !self.alive.get() {
            return;
        }
        let region_id = {
            let regions = self.regions.borrow();
            // Deterministic choice when more than one hosted region
            // transiently covers `start` (e.g. an offline parent beside
            // an online daughter mid-split): prefer the online region,
            // tie-break by id — HashMap iteration order must never pick
            // the reply.
            let mut covering: Vec<_> = regions
                .values()
                .filter(|st| st.desc.contains(&start))
                .map(|st| (st.desc.id, st.online))
                .collect();
            covering.sort_unstable_by_key(|(id, _)| *id);
            match covering
                .iter()
                .find(|(_, online)| *online)
                .or_else(|| covering.first())
            {
                Some((id, true)) => *id,
                Some((id, false)) => {
                    reply(Err(StoreError::NotServing(*id)));
                    return;
                }
                None => {
                    reply(Err(StoreError::RegionUnknown));
                    return;
                }
            }
        };
        // Scans touch many rows, so per-(row, column) bloom filters
        // cannot exclude a file for them — key-range pruning only: a
        // file is consulted iff its row range overlaps [start, end).
        let consulted_files = {
            let regions = self.regions.borrow();
            regions
                .get(&region_id)
                .map(|st| {
                    st.flushing
                        .iter()
                        .chain(st.storefiles.iter())
                        .filter(|sf| sf.range_overlaps(&start, end.as_deref()))
                        .count()
                })
                .unwrap_or(0)
        };
        let service = self.cfg.base_service
            + self.cfg.read_service * 3
            + self.cfg.storefile_read_service * consulted_files.saturating_sub(1) as u64;
        self.charge_region_load(region_id, service);
        let submitted = self.sim.now();
        let this = Rc::clone(self);
        self.handlers.submit(service, move || {
            if !this.alive.get() {
                return;
            }
            let regions = this.regions.borrow();
            let Some(st) = regions.get(&region_id) else {
                reply(Err(StoreError::NotServing(region_id)));
                return;
            };
            // Merge memstore, flushing snapshot and store files: newest
            // version per cell wins.
            let mut merged: HashMap<(Bytes, Bytes), VersionedValue> = HashMap::new();
            let mut absorb = |hits: Vec<(Bytes, Bytes, VersionedValue)>| {
                for (r, c, vv) in hits {
                    match merged.get(&(r.clone(), c.clone())) {
                        Some(old) if old.ts >= vv.ts => {}
                        _ => {
                            merged.insert((r, c), vv);
                        }
                    }
                }
            };
            for sf in &st.storefiles {
                if !sf.range_overlaps(&start, end.as_deref()) {
                    continue;
                }
                absorb(sf.scan(&start, end.as_deref(), snapshot));
            }
            if let Some(fl) = &st.flushing {
                if fl.range_overlaps(&start, end.as_deref()) {
                    absorb(fl.scan(&start, end.as_deref(), snapshot));
                }
            }
            absorb(st.memstore.scan(&start, end.as_deref(), snapshot));
            let mut out: Vec<(Bytes, Bytes, VersionedValue)> = merged
                .into_iter()
                .filter(|(_, vv)| vv.value.is_some())
                .map(|((r, c), vv)| (r, c, vv))
                .collect();
            out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
            out.truncate(limit);
            let region_end = st.desc.end.clone();
            this.scans.inc();
            let now = this.sim.now();
            let queue_ns = (now.nanos() - submitted.nanos()).saturating_sub(service.nanos());
            this.trace.borrow().record(now, "rpc.scan", || {
                format!(
                    "server={} region={} files={} queue_ns={} service_ns={} returned={}",
                    this.id,
                    region_id,
                    consulted_files,
                    queue_ns,
                    service.nanos(),
                    out.len()
                )
            });
            reply(Ok(ScanPage {
                cells: out,
                region_end,
            }));
        });
    }

    // ------------------------------------------------------------------
    // Region lifecycle
    // ------------------------------------------------------------------

    /// Opens a region on this server.
    ///
    /// For a fresh open `recovered_paths` is empty and `failed` is `None`;
    /// the region goes online immediately. After a failover the master
    /// passes the paths of the region's recovered-edits files (its split
    /// WAL records, durable in the filesystem) and the failed server's
    /// id; the edits are read back and replayed into a fresh memstore
    /// (HBase-internal recovery) and the region stays offline until the
    /// recovery hooks call back (transactional recovery, §3.2).
    pub fn open_region(
        self: &Rc<Self>,
        desc: RegionDescriptor,
        storefile_paths: Vec<String>,
        recovered_paths: Vec<String>,
        failed: Option<ServerId>,
    ) {
        if !self.alive.get() {
            return;
        }
        let region = desc.id;
        // Skip in-flight compaction temporaries (a crashed server's
        // half-written merge output): the retired inputs are only deleted
        // after the merged file is renamed into its final name, so the
        // remaining files always cover all data.
        let storefiles: Vec<Rc<StoreFileData>> = storefile_paths
            .iter()
            .filter(|p| !compaction::is_tmp_path(p))
            .filter_map(|p| self.registry.get(p))
            .collect();
        self.regions.borrow_mut().insert(
            region,
            RegionState {
                desc,
                memstore: MemStore::new(),
                flushing: None,
                storefiles,
                // Adopted files all start at level 0: a failed-over
                // server does not know its predecessor's level layout,
                // and L0 is the only level that tolerates overlapping
                // ranges. The leveled policy re-sorts them down.
                file_levels: HashMap::new(),
                recovered_paths: recovered_paths.clone(),
                online: false,
                flush_in_progress: false,
                compaction_in_progress: false,
                splitting: false,
            },
        );
        self.update_file_metrics();
        self.replay_recovered_edits(region, recovered_paths, 0, failed);
    }

    /// Sequentially reads and replays recovered-edits files, then runs the
    /// recovery gating. Unreadable files are retried: skipping them would
    /// silently lose acknowledged data.
    fn replay_recovered_edits(
        self: &Rc<Self>,
        region: RegionId,
        paths: Vec<String>,
        idx: usize,
        failed: Option<ServerId>,
    ) {
        if !self.alive.get() {
            return;
        }
        if idx >= paths.len() {
            self.finish_region_open(region, failed, false);
            return;
        }
        let this = Rc::clone(self);
        let path = paths[idx].clone();
        let span_path = path.clone();
        self.dfs.read(&path, move |data| {
            match data {
                Ok(batches) => {
                    let mut edit_count = 0u64;
                    {
                        let mut regions = this.regions.borrow_mut();
                        let Some(st) = regions.get_mut(&region) else {
                            return;
                        };
                        for batch in &batches {
                            if let Ok(records) = crate::codec::decode_wal_batch(batch) {
                                for rec in records {
                                    for m in &rec.mutations {
                                        edit_count += 1;
                                        st.memstore.apply_mutation(
                                            m.row.clone(),
                                            m.column.clone(),
                                            rec.ts,
                                            &m.kind,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    this.events
                        .borrow()
                        .record(this.sim.now(), "region.replay", || {
                            format!(
                                "server={} region={} path={span_path} edits={edit_count}",
                                this.id, region
                            )
                        });
                    // Replaying edits costs handler time.
                    let service = this.cfg.base_service
                        + this.cfg.write_service_per_mutation * edit_count.max(1) / 2;
                    let next = Rc::clone(&this);
                    this.handlers.submit(service, move || {
                        next.replay_recovered_edits(region, paths, idx + 1, failed);
                    });
                }
                Err(_) => {
                    let retry = Rc::clone(&this);
                    this.sim
                        .schedule_in(SimDuration::from_millis(200), move || {
                            retry.replay_recovered_edits(region, paths, idx, failed);
                        });
                }
            }
        });
    }

    fn finish_region_open(
        self: &Rc<Self>,
        region: RegionId,
        failed: Option<ServerId>,
        promoted: bool,
    ) {
        match failed {
            Some(failed_server) => {
                let hooks = Rc::clone(&*self.hooks.borrow());
                let weak = Rc::downgrade(self);
                hooks.on_region_recovered(
                    Rc::clone(self),
                    region,
                    failed_server,
                    promoted,
                    Box::new(move || {
                        if let Some(server) = weak.upgrade() {
                            server.mark_region_online(region);
                        }
                    }),
                );
            }
            None => self.mark_region_online(region),
        }
    }

    /// Declares a hosted region online (ends its recovery gating).
    pub fn mark_region_online(&self, region: RegionId) {
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.online = true;
            self.events
                .borrow()
                .record(self.sim.now(), "region.online", || {
                    format!("server={} region={}", self.id, region)
                });
        }
    }

    // ------------------------------------------------------------------
    // Memstore flushing
    // ------------------------------------------------------------------

    fn check_flushes(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        let ccfg = self.cfg.compaction;
        let policy = Rc::clone(&*self.policy.borrow());
        let mut candidates: Vec<RegionId> = Vec::new();
        {
            let regions = self.regions.borrow();
            let mut due: Vec<(&RegionId, &RegionState)> = regions
                .iter()
                .filter(|(_, st)| {
                    st.online
                        && !st.flush_in_progress
                        // A splitting region's file set must stay stable
                        // between reference creation and the flip; its
                        // memstore leftovers move to the daughters.
                        && !st.splitting
                        && st.memstore.approx_bytes() >= self.cfg.memstore_flush_bytes
                })
                .collect();
            // HashMap iteration order varies per process; flush in region
            // order so runs with the same seed stay byte-identical.
            due.sort_unstable_by_key(|(id, _)| **id);
            for (id, st) in due {
                // Flush stall (hard backpressure): past the file-count
                // limit a flush would only deepen the unmerged backlog,
                // so the memstore keeps absorbing writes until
                // compaction catches up. Only meaningful while
                // compaction runs — without it the backlog would never
                // drain and the stall would hold forever.
                if ccfg.enabled
                    && ccfg.backpressure
                    && policy.flush_should_stall(st.stall_signal(), &ccfg)
                {
                    self.compaction_stats.flush_stalls.inc();
                    self.compaction_stats
                        .stall_ns
                        .add(self.cfg.flush_check_interval.nanos());
                    self.events
                        .borrow()
                        .record(self.sim.now(), "flush.stall", || {
                            format!(
                                "server={} region={} files={}",
                                self.id,
                                id,
                                st.stall_signal().total_files
                            )
                        });
                    continue;
                }
                candidates.push(*id);
            }
        }
        for region in candidates {
            self.flush_region(region);
        }
    }

    /// Flushes `region`'s memstore to a new store file in the filesystem.
    /// Reads keep seeing the data throughout (flushing snapshot).
    pub fn flush_region(self: &Rc<Self>, region: RegionId) {
        let path = {
            let mut regions = self.regions.borrow_mut();
            let Some(st) = regions.get_mut(&region) else {
                return;
            };
            if st.flush_in_progress || st.memstore.is_empty() {
                return;
            }
            st.flush_in_progress = true;
            let n = self.storefile_counter.get();
            self.storefile_counter.set(n + 1);
            format!("/store/{region}/{:06}-{}", n, self.id)
        };
        let data = {
            let mut regions = self.regions.borrow_mut();
            let st = regions.get_mut(&region).expect("checked above");
            let snapshot = st.memstore.take();
            let data = Rc::new(StoreFileData::from_memstore(
                region,
                path.clone(),
                &snapshot,
            ));
            st.flushing = Some(Rc::clone(&data));
            data
        };
        // The flushing snapshot is immediately part of the readable file
        // stack; refresh the gauges now, not only when the DFS write acks.
        self.update_file_metrics();
        let weak = Rc::downgrade(self);
        let registry = Rc::clone(&self.registry);
        let data2 = Rc::clone(&data);
        self.dfs.create(&path, move |file| {
            let Ok(file) = file else { return };
            let encoded = data2.encode();
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(server) = weak.upgrade() else { return };
                if result.is_err() {
                    // Filesystem unavailable: leave the snapshot readable
                    // in `flushing`; the next flush-check retries nothing
                    // (flush_in_progress stays set) but data is not lost —
                    // the WAL still covers it.
                    return;
                }
                registry.insert(Rc::clone(&data2));
                let recovered = {
                    let mut regions = server.regions.borrow_mut();
                    match regions.get_mut(&region) {
                        Some(st) => {
                            st.storefiles.push(Rc::clone(&data2));
                            st.flushing = None;
                            st.flush_in_progress = false;
                            std::mem::take(&mut st.recovered_paths)
                        }
                        None => Vec::new(),
                    }
                };
                server.update_file_metrics();
                // The file set changed and the memstore was truncated:
                // re-baseline every backup lane with a full-state sync
                // (this is also what keeps shadow memstores bounded).
                server.ship_sync(region);
                // The flushed store file now covers the recovered edits;
                // their files can be garbage-collected.
                for path in recovered {
                    server.dfs.delete(&path);
                }
            });
        });
    }

    // ------------------------------------------------------------------
    // Background compaction (see `crate::compaction` for the policy, the
    // merge and the crash-safety argument)
    // ------------------------------------------------------------------

    /// Foreground handler utilization over the window since the last
    /// compaction check (the deficit scheduler's admission signal).
    /// Work this server itself submitted as background (merges, recovery
    /// tracking) is subtracted out, so an admitted merge does not make
    /// the following windows read as foreground saturation.
    fn sample_utilization(&self) -> f64 {
        let now_ns = self.sim.now().nanos();
        let busy_ns = self.handlers.busy_nanos();
        let background_ns = self.background_ns.get();
        let elapsed = now_ns.saturating_sub(self.sched_checked_ns.get());
        let busy_delta = busy_ns.saturating_sub(self.sched_busy_ns.get());
        let background_delta = background_ns.saturating_sub(self.sched_background_ns.get());
        self.sched_checked_ns.set(now_ns);
        self.sched_busy_ns.set(busy_ns);
        self.sched_background_ns.set(background_ns);
        if elapsed == 0 {
            return 0.0;
        }
        let foreground = busy_delta.saturating_sub(background_delta);
        foreground as f64 / (elapsed as f64 * self.cfg.handlers as f64)
    }

    fn check_compactions(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        let cfg = self.cfg.compaction;
        let utilization = self.sample_utilization();
        let policy = Rc::clone(&*self.policy.borrow());
        // One candidate region per tick: compaction competes with
        // foreground traffic for handler slots, so pace it. The policy
        // decides per region whether a merge is due; the deepest file
        // backlog wins (regions in sorted order for determinism).
        let picked = {
            let regions = self.regions.borrow();
            let mut ordered: Vec<(&RegionId, &RegionState)> = regions.iter().collect();
            ordered.sort_unstable_by_key(|(id, _)| **id);
            let mut best: Option<(usize, RegionId, PlannedCompaction, u64)> = None;
            for (id, st) in ordered {
                if !st.online || st.compaction_in_progress || st.splitting {
                    continue;
                }
                let metas = st.file_metas();
                let Some(CompactionJob {
                    inputs,
                    output_level,
                    max_output_bytes,
                }) = policy.pick(&metas, &cfg)
                else {
                    continue;
                };
                let entries: u64 = inputs.iter().map(|&i| metas[i].entries as u64).sum();
                let plan = PlannedCompaction {
                    input_paths: inputs.iter().map(|&i| metas[i].path.clone()).collect(),
                    output_level,
                    max_output_bytes,
                };
                let depth = st.storefiles.len();
                if best.as_ref().map(|(d, ..)| depth > *d).unwrap_or(true) {
                    best = Some((depth, *id, plan, entries));
                }
            }
            best
        };
        let Some((_, region, plan, total_entries)) = picked else {
            // Nothing due: the deficit bank only accrues against real
            // deferred work.
            self.compaction_deficit.set(0);
            return;
        };
        // Soft backpressure: while the foreground is saturated, a due
        // merge waits — but each deferral banks a deficit token, and a
        // full bank forces the merge so read amplification cannot grow
        // without bound under sustained overload.
        if cfg.backpressure && utilization > cfg.utilization_threshold {
            if self.compaction_deficit.get() < cfg.max_deferrals {
                self.compaction_deficit
                    .set(self.compaction_deficit.get() + 1);
                self.compaction_stats.deferred.inc();
                self.events
                    .borrow()
                    .record(self.sim.now(), "compaction.defer", || {
                        format!(
                            "server={} region={} deficit={}",
                            self.id,
                            region,
                            self.compaction_deficit.get()
                        )
                    });
                return;
            }
            self.compaction_stats.forced.inc();
            self.events
                .borrow()
                .record(self.sim.now(), "compaction.force", || {
                    format!("server={} region={}", self.id, region)
                });
        }
        self.compaction_deficit.set(0);
        {
            let mut regions = self.regions.borrow_mut();
            let Some(st) = regions.get_mut(&region) else {
                return;
            };
            st.compaction_in_progress = true;
        }
        self.compaction_stats.started.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "compaction.start", || {
                format!(
                    "server={} region={} inputs={} level={}",
                    self.id,
                    region,
                    plan.input_paths.len(),
                    plan.output_level
                )
            });
        let service = self.cfg.base_service + cfg.merge_service_per_entry * total_entries.max(1);
        let this = Rc::clone(self);
        self.submit_background(service, move || this.run_compaction(region, plan));
    }

    /// Clears the in-flight flag so a failed attempt can be retried by a
    /// later check.
    fn abort_compaction(&self, region: RegionId) {
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.compaction_in_progress = false;
        }
    }

    /// The merge phase, running on a handler slot. The input set was
    /// chosen when the work was queued; it is re-validated here because
    /// flushes (or a region reopen) may have run in between.
    fn run_compaction(self: &Rc<Self>, region: RegionId, plan: PlannedCompaction) {
        if !self.alive.get() {
            return;
        }
        let merged = {
            let regions = self.regions.borrow();
            let Some(st) = regions.get(&region) else {
                return; // region moved away; nothing to clean up
            };
            let inputs: Vec<Rc<StoreFileData>> = st
                .storefiles
                .iter()
                .filter(|sf| plan.input_paths.iter().any(|p| p == sf.path()))
                .cloned()
                .collect();
            if inputs.len() != plan.input_paths.len() {
                drop(regions);
                self.abort_compaction(region);
                return;
            }
            // Tombstones may only be purged when this merge sees every
            // file of the region (nothing left for them to shadow) — and
            // even then, replayed recovered edits can park *older*
            // versions in the memstore, so a guard checks for those.
            let major = inputs.len() == st.storefiles.len() && st.flushing.is_none();
            let watermark = self
                .gc_watermark
                .borrow()
                .as_ref()
                .map(|source| source())
                .unwrap_or(GcWatermark::ZERO);
            let guard = |row: &[u8], col: &[u8], ts: Timestamp| -> bool {
                if ts == Timestamp::ZERO {
                    return false;
                }
                let below = Timestamp(ts.0 - 1);
                st.memstore.get(row, col, below).is_some()
                    || st
                        .flushing
                        .as_ref()
                        .and_then(|f| f.get(row, col, below))
                        .is_some()
            };
            // Output names draw from the same counter flushes use, one
            // per partition, in partition order — deterministic.
            let counter = &self.storefile_counter;
            let server_id = self.id;
            let path_for = |_: usize| {
                let n = counter.get();
                counter.set(n + 1);
                format!("/store/{region}/{:06}c-{}", n, server_id)
            };
            compaction::merge_store_files_partitioned(
                region,
                &path_for,
                &inputs,
                watermark,
                major,
                &guard,
                plan.max_output_bytes,
            )
        };
        self.compaction_stats
            .versions_dropped
            .add(merged.versions_dropped);

        // Everything was garbage (e.g. a fully deleted key range): no
        // output file to write, just retire the inputs.
        if merged.outputs.is_empty() {
            self.finish_compaction(region, plan.input_paths, Vec::new(), plan.output_level);
            return;
        }

        let outputs: Rc<Vec<Rc<StoreFileData>>> =
            // lint:allow(CD001, reason = "false positive: this `merged` is a MultiMergeResult whose outputs is a key-ordered Vec — the name collides with handle_scan's stitch map")
            Rc::new(merged.outputs.into_iter().map(Rc::new).collect());
        self.write_compaction_outputs(region, plan.input_paths, outputs, plan.output_level, 0);
    }

    /// Writes output partition `idx` to the filesystem under its temp
    /// name, then recurses to the next; once all are durable, the rename
    /// phase promotes them. A crash mid-way leaves only ignorable `.tmp-`
    /// files — the inputs still cover all data.
    fn write_compaction_outputs(
        self: &Rc<Self>,
        region: RegionId,
        input_paths: Vec<String>,
        outputs: Rc<Vec<Rc<StoreFileData>>>,
        level: u32,
        idx: usize,
    ) {
        if !self.alive.get() {
            return;
        }
        if idx == outputs.len() {
            self.rename_compaction_outputs(region, input_paths, outputs, level, 0);
            return;
        }
        let data = Rc::clone(&outputs[idx]);
        let tmp = compaction::tmp_name(data.path());
        let weak = Rc::downgrade(self);
        let outputs2 = Rc::clone(&outputs);
        self.dfs.create(&tmp, move |file| {
            let Some(server) = weak.upgrade() else { return };
            let Ok(file) = file else {
                server.abort_compaction_cleanup(region, &outputs2, 0, idx + 1);
                return;
            };
            let encoded = data.encode();
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(server) = weak.upgrade() else { return };
                if !server.alive.get() {
                    return;
                }
                if result.is_err() {
                    // Filesystem unavailable: give up this attempt; the
                    // temp files are ignorable garbage by construction.
                    server.abort_compaction_cleanup(region, &outputs2, 0, idx + 1);
                    return;
                }
                server.write_compaction_outputs(region, input_paths, outputs2, level, idx + 1);
            });
        });
    }

    /// Promotes durable temp files into their final names one by one,
    /// registering each, then swaps the full output run in. If a rename
    /// fails, the already-promoted prefix stays behind as registered but
    /// unreferenced files — read-equivalent duplicates of the inputs
    /// (which are *not* retired on this path), exactly the crash window
    /// the recovery path already tolerates.
    fn rename_compaction_outputs(
        self: &Rc<Self>,
        region: RegionId,
        input_paths: Vec<String>,
        outputs: Rc<Vec<Rc<StoreFileData>>>,
        level: u32,
        idx: usize,
    ) {
        if !self.alive.get() {
            return;
        }
        if idx == outputs.len() {
            let outputs = (*outputs).clone();
            self.finish_compaction(region, input_paths, outputs, level);
            return;
        }
        let data = Rc::clone(&outputs[idx]);
        let tmp = compaction::tmp_name(data.path());
        let final_path = data.path().to_owned();
        let weak = Rc::downgrade(self);
        let outputs2 = Rc::clone(&outputs);
        self.dfs.clone().rename(&tmp, &final_path, move |renamed| {
            let Some(server) = weak.upgrade() else { return };
            if !server.alive.get() {
                return;
            }
            if renamed.is_err() {
                server.abort_compaction_cleanup(region, &outputs2, idx, outputs2.len());
                return;
            }
            server.registry.insert(Rc::clone(&data));
            server.rename_compaction_outputs(region, input_paths, outputs2, level, idx + 1);
        });
    }

    /// Deletes the temp files of output partitions `[lo, hi)` (best
    /// effort) and clears the in-flight flag so a later check retries.
    fn abort_compaction_cleanup(
        &self,
        region: RegionId,
        outputs: &Rc<Vec<Rc<StoreFileData>>>,
        lo: usize,
        hi: usize,
    ) {
        for data in &outputs[lo..hi.min(outputs.len())] {
            self.dfs.delete(&compaction::tmp_name(data.path()));
        }
        self.abort_compaction(region);
    }

    /// Atomically swaps the merged output run in for its inputs,
    /// invalidates the region's cached blocks (compaction rewrote them),
    /// records the outputs' level, updates the metrics and retires the
    /// obsolete files from registry + filesystem.
    fn finish_compaction(
        self: &Rc<Self>,
        region: RegionId,
        input_paths: Vec<String>,
        outputs: Vec<Rc<StoreFileData>>,
        level: u32,
    ) {
        let bytes: u64 = outputs.iter().map(|o| o.total_bytes() as u64).sum();
        let filter_created: u64 = outputs.iter().map(|o| o.filter_bytes() as u64).sum();
        let mut filter_dropped = 0u64;
        {
            let mut regions = self.regions.borrow_mut();
            let Some(st) = regions.get_mut(&region) else {
                // The region moved away mid-compaction. Leave the inputs
                // alone — the new host is reading them; the merged files
                // are harmless (read-equivalent) duplicates that a later
                // compaction there will fold in.
                return;
            };
            st.storefiles.retain(|sf| {
                let retired = input_paths.iter().any(|p| p == sf.path());
                if retired {
                    filter_dropped += sf.filter_bytes() as u64;
                }
                !retired
            });
            for p in &input_paths {
                st.file_levels.remove(p);
            }
            for output in outputs {
                if level > 0 {
                    st.file_levels.insert(output.path().to_owned(), level);
                }
                st.storefiles.push(output);
            }
            st.compaction_in_progress = false;
        }
        // The inputs' blocks died with them; drop the region's cached
        // rows so the cache refills from the merged file's blocks.
        self.cache.borrow_mut().evict_region(region);
        self.compaction_stats.completed.inc();
        self.compaction_stats.bytes_rewritten.add(bytes);
        self.compaction_stats
            .files_retired
            .add(input_paths.len() as u64);
        self.compaction_stats
            .filter_bytes_dropped
            .add(filter_dropped);
        self.compaction_stats
            .filter_bytes_created
            .add(filter_created);
        self.events
            .borrow()
            .record(self.sim.now(), "compaction.finish", || {
                format!(
                    "server={} region={} retired={} bytes={}",
                    self.id,
                    region,
                    input_paths.len(),
                    bytes
                )
            });
        self.update_file_metrics();
        // Compaction rewrote the file set; re-baseline backup lanes so a
        // promoted shadow resolves the merged files, not retired ones.
        self.ship_sync(region);
        // Fencing: retiring the inputs is the one destructive step, and a
        // server partitioned from the coordination service may already
        // have been failed over — the new host still reads these files.
        // Confirm our liveness znode exists before destroying anything; a
        // partitioned server's query never comes back (the network drops
        // it), so the files survive for the rightful host. If the fence
        // wrongly holds the files (znode raced away), they merely leak —
        // reads stay correct because the merged file is read-equivalent
        // to the inputs.
        let coord = self.coord.borrow().clone();
        match coord {
            Some(coord) => {
                let weak = Rc::downgrade(self);
                coord.get_data(&format!("/live/servers/{}", self.id), move |znode| {
                    let Some(server) = weak.upgrade() else { return };
                    if znode.is_some() && server.alive.get() {
                        server.retire_compacted_inputs(input_paths);
                    }
                });
            }
            // No coordination service (standalone server, unit tests):
            // there is no failover to fence against.
            None => self.retire_compacted_inputs(input_paths),
        }
    }

    fn retire_compacted_inputs(&self, input_paths: Vec<String>) {
        for path in input_paths {
            let data = self.registry.get(&path);
            self.registry.remove(&path);
            let backing = data
                .as_ref()
                .filter(|d| d.is_reference())
                .map(|d| d.backing_path().to_owned());
            match backing {
                // A split reference half-file: delete its marker file and
                // release the hold on the parent's physical file; when
                // the sibling daughter's reference is gone too, the
                // parent file itself finally dies — "the first major
                // compaction per daughter rewrites the references and
                // drops the parent files".
                Some(backing) => {
                    self.dfs.delete(&path);
                    if self.registry.release_backing_ref(&backing) {
                        self.registry.remove(&backing);
                        let stats = self.compaction_stats.clone();
                        self.dfs.delete_with_callback(&backing, move |existed| {
                            if existed {
                                stats.deletes_confirmed.inc();
                            }
                        });
                    }
                }
                None => {
                    let stats = self.compaction_stats.clone();
                    self.dfs.delete_with_callback(&path, move |existed| {
                        if existed {
                            stats.deletes_confirmed.inc();
                        }
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Online region splits (see ARCHITECTURE.md, "Online region splits":
    // candidate → flush → intent → reference markers → atomic flip)
    // ------------------------------------------------------------------

    /// The split candidacy check (fixed-phase timer). One split runs at a
    /// time per server; a pending split is advanced before any new
    /// candidate is considered.
    fn check_splits(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        if self.pending_split.borrow().is_some() {
            self.advance_pending_split();
            return;
        }
        // One structural operation per server at a time: a merge in
        // flight defers split candidacy to the next tick (and vice
        // versa), so their flush/quiescence phases never interleave.
        if self.pending_merge.borrow().is_some() {
            return;
        }
        if self.split_coord.borrow().is_none() {
            return; // no master wiring — splits are inert
        }
        // Deepest store-file backlog first, ids as the deterministic
        // tie-break (same discipline as the compaction scheduler).
        let picked = {
            let regions = self.regions.borrow();
            let mut ordered: Vec<(&RegionId, &RegionState)> = regions.iter().collect();
            ordered.sort_unstable_by_key(|(id, _)| **id);
            let mut best: Option<(usize, RegionId, Bytes)> = None;
            for (id, st) in ordered {
                if !st.online || st.splitting || !st.recovered_paths.is_empty() {
                    continue;
                }
                let bytes: usize = st.storefiles.iter().map(|sf| sf.total_bytes()).sum();
                if bytes < self.cfg.split.threshold_bytes {
                    continue;
                }
                // Midpoint from file metadata: the largest store file's
                // middle row (HBase's midkey heuristic), valid only if it
                // falls strictly inside the region — both daughters must
                // be non-empty key ranges.
                let largest = st
                    .storefiles
                    .iter()
                    .max_by(|a, b| (a.total_bytes(), a.path()).cmp(&(b.total_bytes(), b.path())));
                let Some(key) = largest.and_then(|sf| sf.mid_row()) else {
                    continue;
                };
                let inside = key[..] > st.desc.start[..]
                    && st.desc.end.as_ref().map(|e| &key < e).unwrap_or(true);
                if !inside {
                    continue;
                }
                if best.as_ref().map(|(b, ..)| bytes > *b).unwrap_or(true) {
                    best = Some((bytes, *id, key));
                }
            }
            best
        };
        let Some((_, region, split_key)) = picked else {
            return;
        };
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.splitting = true;
        }
        self.split_stats.considered.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.consider", || {
                format!("server={} region={}", self.id, region)
            });
        *self.pending_split.borrow_mut() = Some(PendingSplit {
            region,
            split_key,
            flush_issued: false,
            intent_sent: false,
        });
        self.advance_pending_split();
    }

    /// Drives a pending split forward: flush the parent's memstore once,
    /// then ask the master for a durable split intent. Anything the
    /// memstore absorbs after the flush moves to the daughters at the
    /// flip, so the parent keeps serving throughout.
    fn advance_pending_split(self: &Rc<Self>) {
        let (region, split_key, flush_issued, intent_sent) = {
            let p = self.pending_split.borrow();
            let Some(p) = p.as_ref() else { return };
            (p.region, p.split_key.clone(), p.flush_issued, p.intent_sent)
        };
        if intent_sent {
            return; // waiting for the master's execute / denial
        }
        let (gone, flush_busy, memstore_dirty) = {
            let regions = self.regions.borrow();
            match regions.get(&region) {
                Some(st) => (
                    false,
                    st.flush_in_progress || st.flushing.is_some(),
                    !st.memstore.is_empty(),
                ),
                None => (true, false, false),
            }
        };
        if gone {
            self.clear_pending_split(region);
            return;
        }
        if flush_busy {
            return; // next check tick
        }
        if memstore_dirty && !flush_issued {
            if let Some(p) = self.pending_split.borrow_mut().as_mut() {
                p.flush_issued = true;
            }
            self.flush_region(region);
            return;
        }
        if let Some(p) = self.pending_split.borrow_mut().as_mut() {
            p.intent_sent = true;
        }
        let Some(coord) = self.split_coord.borrow().clone() else {
            self.clear_pending_split(region);
            return;
        };
        self.split_stats.intents_requested.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.intent", || {
                format!("server={} region={}", self.id, region)
            });
        let id = self.id;
        let net = Rc::clone(&self.net);
        net.send(self.node, coord.node(), 96 + split_key.len(), move || {
            coord.request_split(id, region, split_key)
        });
    }

    /// Drops the pending split and clears the region's `splitting` flag
    /// (denial, abandonment or a vanished region).
    fn clear_pending_split(&self, region: RegionId) {
        self.pending_split.borrow_mut().take();
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.splitting = false;
        }
    }

    /// Master RPC: the split request was rejected (stale assignment, an
    /// intent already in flight, or an invalid key). The region resumes
    /// normal flush/compaction scheduling.
    pub fn split_request_denied(&self, region: RegionId) {
        if !self.alive.get() {
            return;
        }
        let matches = self
            .pending_split
            .borrow()
            .as_ref()
            .map(|p| p.region == region)
            .unwrap_or(false);
        if matches {
            self.split_stats.aborted.inc();
            self.events
                .borrow()
                .record(self.sim.now(), "split.denied", || {
                    format!("server={} region={}", self.id, region)
                });
            self.clear_pending_split(region);
        }
    }

    /// Master RPC: the split intent is durable — execute. Builds the
    /// daughters' reference half-files over the parent's store files,
    /// makes their marker files durable in the filesystem (so a failover
    /// can resolve the daughters' file sets), then flips atomically.
    pub fn execute_split(
        self: &Rc<Self>,
        region: RegionId,
        split_key: Bytes,
        bottom: RegionId,
        top: RegionId,
    ) {
        if !self.alive.get() {
            return;
        }
        let matches = self
            .pending_split
            .borrow()
            .as_ref()
            .map(|p| p.region == region && p.split_key == split_key)
            .unwrap_or(false);
        if !matches {
            // We no longer recognize this intent (e.g. abandoned); tell
            // the master to roll it back rather than leaving it dangling.
            self.notify_split_aborted(region);
            return;
        }
        // A compaction admitted before the split became pending may still
        // be in flight; the file set must be quiescent before references
        // are cut over it. Retry shortly (fixed delay, no RNG).
        let busy = {
            let regions = self.regions.borrow();
            regions
                .get(&region)
                .map(|st| {
                    st.compaction_in_progress || st.flush_in_progress || st.flushing.is_some()
                })
                .unwrap_or(false)
        };
        if busy {
            let this = Rc::clone(self);
            self.sim
                .schedule_in(SimDuration::from_millis(200), move || {
                    this.execute_split(region, split_key, bottom, top)
                });
            return;
        }
        self.split_stats.executing.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.execute", || {
                format!(
                    "server={} region={} bottom={} top={}",
                    self.id, region, bottom, top
                )
            });
        // Tell the backups a split intent is executing, so a promotion
        // racing the flip knows the shadow may be mid-split (the master
        // rolls the intent back before promoting, so the promoted
        // replica discards it).
        self.ship_split_intent(region, bottom, top);
        let (desc, parents): (RegionDescriptor, Vec<(Rc<StoreFileData>, u32)>) = {
            let regions = self.regions.borrow();
            let Some(st) = regions.get(&region) else {
                drop(regions);
                self.notify_split_aborted(region);
                self.clear_pending_split(region);
                return;
            };
            (
                st.desc.clone(),
                st.storefiles
                    .iter()
                    .map(|sf| (Rc::clone(sf), st.level_of(sf.path())))
                    .collect(),
            )
        };
        let mut bottom_files: Vec<(Rc<StoreFileData>, u32)> = Vec::new();
        let mut top_files: Vec<(Rc<StoreFileData>, u32)> = Vec::new();
        let mut markers: Vec<(String, Bytes)> = Vec::new();
        for (sf, level) in &parents {
            let base = sf.path().rsplit('/').next().unwrap_or("file").to_owned();
            let clips = [
                (bottom, &desc.start[..], Some(&split_key[..])),
                (top, &split_key[..], desc.end.as_deref()),
            ];
            for (daughter, lo, hi) in clips {
                let path = format!("/store/{daughter}/ref-{base}");
                if let Some(r) = StoreFileData::reference(sf, daughter, path, lo, hi) {
                    let r = Rc::new(r);
                    // The parent's physical file must outlive this
                    // reference; the registry tracks the hold.
                    self.registry.add_backing_ref(r.backing_path());
                    self.registry.insert(Rc::clone(&r));
                    markers.push((r.path().to_owned(), encode_ref_marker(&r)));
                    if daughter == bottom {
                        bottom_files.push((r, *level));
                    } else {
                        top_files.push((r, *level));
                    }
                }
            }
        }
        let work = Rc::new(SplitWork {
            region,
            split_key,
            bottom,
            top,
            parent_desc: desc,
            bottom_files,
            top_files,
            markers,
        });
        self.write_split_markers(work, 0);
    }

    /// Writes reference marker file `idx` to the filesystem, then
    /// recurses; once all are durable the flip runs. A crash mid-way
    /// leaves only orphaned markers under daughter directories the region
    /// map never learns about — the master's failover rolls the intent
    /// back and recovers the parent from its untouched files.
    fn write_split_markers(self: &Rc<Self>, work: Rc<SplitWork>, idx: usize) {
        if !self.alive.get() {
            return;
        }
        if idx == work.markers.len() {
            self.finish_split(&work);
            return;
        }
        let (path, content) = work.markers[idx].clone();
        let weak = Rc::downgrade(self);
        self.dfs.create(&path, move |file| {
            let Some(server) = weak.upgrade() else { return };
            let Ok(file) = file else {
                server.abort_granted_split(&work);
                return;
            };
            let weak = weak.clone();
            file.append(content, move |result| {
                let Some(server) = weak.upgrade() else { return };
                if !server.alive.get() {
                    return;
                }
                if result.is_err() {
                    server.abort_granted_split(&work);
                    return;
                }
                server.write_split_markers(work, idx + 1);
            });
        });
    }

    /// Server-side rollback of a granted intent (marker writes failed):
    /// unregister the references, release the backing holds (the parent
    /// region still owns its physical files, so nothing is deleted),
    /// best-effort delete the markers, and tell the master.
    fn abort_granted_split(self: &Rc<Self>, work: &SplitWork) {
        for (sf, _) in work.bottom_files.iter().chain(work.top_files.iter()) {
            self.registry.remove(sf.path());
            let _ = self.registry.release_backing_ref(sf.backing_path());
        }
        for (path, _) in &work.markers {
            self.dfs.delete(path);
        }
        self.split_stats.aborted.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.abort", || {
                format!("server={} region={}", self.id, work.region)
            });
        self.clear_pending_split(work.region);
        self.notify_split_aborted(work.region);
    }

    fn notify_split_aborted(&self, region: RegionId) {
        let Some(coord) = self.split_coord.borrow().clone() else {
            return;
        };
        let id = self.id;
        self.net.send(self.node, coord.node(), 48, move || {
            coord.split_aborted(id, region)
        });
    }

    /// The atomic flip: in one event, the parent region state is removed
    /// and both daughters appear online — reference files as their store
    /// stacks, the parent's leftover memstore partitioned between them at
    /// the split key. At no instant are parent and daughters both
    /// servable. The master is then told to apply the map change.
    fn finish_split(self: &Rc<Self>, work: &SplitWork) {
        if !self.alive.get() {
            return;
        }
        let superseded = {
            let mut regions = self.regions.borrow_mut();
            let Some(parent) = regions.remove(&work.region) else {
                drop(regions);
                self.abort_granted_split(work);
                return;
            };
            // Leftover memstore entries (absorbed since the pre-split
            // flush; all covered by WAL records the failover remaps by
            // row) move to the owning daughter.
            let mut ms_bottom = MemStore::new();
            let mut ms_top = MemStore::new();
            for (r, c, ts, v) in parent.memstore.iter() {
                if r[..] < work.split_key[..] {
                    ms_bottom.apply(r.clone(), c.clone(), ts, v.clone());
                } else {
                    ms_top.apply(r.clone(), c.clone(), ts, v.clone());
                }
            }
            // A parent file that is itself a reference (the parent was a
            // daughter of an earlier split) is superseded: the new
            // references back directly onto the physical file and hold
            // their own counts. Its retirement is destructive (registry
            // and filesystem deletes), so it runs *after* the flip,
            // behind the same coordination fence as compaction input
            // retirement — a zombie server must not delete files its
            // failover successor is reading.
            let superseded: Vec<Rc<StoreFileData>> = parent
                .storefiles
                .iter()
                .filter(|sf| sf.is_reference())
                .cloned()
                .collect();
            let mk_state =
                |desc: RegionDescriptor, files: &[(Rc<StoreFileData>, u32)], memstore: MemStore| {
                    RegionState {
                        desc,
                        memstore,
                        flushing: None,
                        storefiles: files.iter().map(|(f, _)| Rc::clone(f)).collect(),
                        file_levels: files
                            .iter()
                            .filter(|(_, l)| *l > 0)
                            .map(|(f, l)| (f.path().to_owned(), *l))
                            .collect(),
                        recovered_paths: Vec::new(),
                        online: true,
                        flush_in_progress: false,
                        compaction_in_progress: false,
                        splitting: false,
                    }
                };
            regions.insert(
                work.bottom,
                mk_state(
                    RegionDescriptor {
                        id: work.bottom,
                        start: work.parent_desc.start.clone(),
                        end: Some(work.split_key.clone()),
                    },
                    &work.bottom_files,
                    ms_bottom,
                ),
            );
            regions.insert(
                work.top,
                mk_state(
                    RegionDescriptor {
                        id: work.top,
                        start: work.split_key.clone(),
                        end: work.parent_desc.end.clone(),
                    },
                    &work.top_files,
                    ms_top,
                ),
            );
            superseded
        };
        // The parent's cached blocks belong to a region that no longer
        // exists; daughters refill under their own ids.
        self.cache.borrow_mut().evict_region(work.region);
        // The parent's accumulated load history moves to the daughters
        // (half each) — the placement signal must not read a server that
        // just split its hottest region as suddenly idle.
        let parent_load = self.split_stats.region_load.get(work.region.0 as u64);
        self.split_stats.region_load.remove(work.region.0 as u64);
        self.split_stats
            .region_load
            .add(work.bottom.0 as u64, parent_load / 2);
        self.split_stats
            .region_load
            .add(work.top.0 as u64, parent_load - parent_load / 2);
        self.pending_split.borrow_mut().take();
        self.split_stats.completed.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.flip", || {
                format!(
                    "server={} region={} bottom={} top={}",
                    self.id, work.region, work.bottom, work.top
                )
            });
        self.update_file_metrics();
        // The parent's replica group follows the flip: daughters inherit
        // the parent's lanes (brought in sync by immediate full-state
        // syncs carrying the daughters' reference files), the parent's
        // shadows are closed.
        self.split_replica_groups(work.region, work.bottom, work.top);
        if !superseded.is_empty() {
            self.retire_superseded_references(superseded);
        }
        if let Some(coord) = self.split_coord.borrow().clone() {
            let id = self.id;
            let region = work.region;
            self.net.send(self.node, coord.node(), 64, move || {
                coord.split_completed(id, region)
            });
        }
    }

    /// Destroys intermediate reference files superseded by a re-split,
    /// releasing (and possibly destroying) their backing holds — behind
    /// the same liveness fence as [`RegionServer::retire_compacted_inputs`]:
    /// a server partitioned from the coordination service may already
    /// have been failed over, and its successor reads exactly these
    /// files. A wrongly held fence merely leaks them (reads stay correct).
    fn retire_superseded_references(self: &Rc<Self>, refs: Vec<Rc<StoreFileData>>) {
        let retire = |server: &RegionServer, refs: Vec<Rc<StoreFileData>>| {
            for sf in refs {
                server.registry.remove(sf.path());
                server.dfs.delete(sf.path());
                let backing = sf.backing_path().to_owned();
                if server.registry.release_backing_ref(&backing) {
                    server.registry.remove(&backing);
                    server.dfs.delete(&backing);
                }
            }
        };
        let coord = self.coord.borrow().clone();
        match coord {
            Some(coord) => {
                let weak = Rc::downgrade(self);
                coord.get_data(&format!("/live/servers/{}", self.id), move |znode| {
                    let Some(server) = weak.upgrade() else { return };
                    if znode.is_some() && server.alive.get() {
                        retire(&server, refs);
                    }
                });
            }
            // No coordination service (standalone server, unit tests):
            // there is no failover to fence against.
            None => retire(self, refs),
        }
    }

    // ------------------------------------------------------------------
    // Online region merges (the split protocol run in reverse: see
    // ARCHITECTURE.md, "Scale campaign & region merges")
    // ------------------------------------------------------------------

    /// Periodic merge candidacy check: among hosted, online, quiescent
    /// regions, find the adjacent co-hosted pair with the smallest
    /// combined durable bytes under the threshold and start merging it.
    fn check_merges(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        if self.pending_merge.borrow().is_some() {
            self.advance_pending_merge();
            return;
        }
        if self.pending_split.borrow().is_some() {
            return; // one structural operation per server at a time
        }
        if self.split_coord.borrow().is_none() {
            return; // no master wiring — merges are inert
        }
        let picked = {
            let regions = self.regions.borrow();
            let mut hosted: Vec<(&RegionId, &RegionState)> = regions
                .iter()
                .filter(|(_, st)| st.online && !st.splitting && st.recovered_paths.is_empty())
                .collect();
            // Adjacency is a key-order property: sort by start key (the
            // sort also fixes HashMap iteration order, keeping runs with
            // the same seed byte-identical).
            hosted.sort_unstable_by(|a, b| a.1.desc.start.cmp(&b.1.desc.start));
            let mut best: Option<(usize, RegionId, RegionId)> = None;
            for w in hosted.windows(2) {
                let (lid, l) = w[0];
                let (rid, r) = w[1];
                if l.desc.end.as_deref() != Some(&r.desc.start[..]) {
                    continue; // co-hosted but not adjacent in the keyspace
                }
                let bytes: usize = l
                    .storefiles
                    .iter()
                    .chain(r.storefiles.iter())
                    .map(|sf| sf.total_bytes())
                    .sum();
                if bytes >= self.cfg.merge.threshold_bytes {
                    continue;
                }
                // Smallest combined pair first; strict < keeps the first
                // pair in key order on ties.
                if best.as_ref().map(|(b, ..)| bytes < *b).unwrap_or(true) {
                    best = Some((bytes, *lid, *rid));
                }
            }
            best
        };
        let Some((_, left, right)) = picked else {
            return;
        };
        self.begin_merge(left, right);
    }

    /// Admin trigger: merge the two hosted regions `left` and `right`
    /// immediately (subject to the same validation the candidacy timer
    /// applies), regardless of thresholds or whether the merge timer is
    /// enabled. Returns `false` without side effects when the pair is
    /// not currently mergeable here — not hosted, not adjacent, mid-op,
    /// or another structural operation is in flight. This is the
    /// HBase-style `merge_region` admin surface; tests and benches use
    /// it to exercise the protocol deterministically.
    pub fn request_region_merge(self: &Rc<Self>, left: RegionId, right: RegionId) -> bool {
        if !self.alive.get()
            || self.pending_merge.borrow().is_some()
            || self.pending_split.borrow().is_some()
            || self.split_coord.borrow().is_none()
        {
            return false;
        }
        let ok = {
            let regions = self.regions.borrow();
            match (regions.get(&left), regions.get(&right)) {
                (Some(l), Some(r)) => {
                    l.online
                        && r.online
                        && !l.splitting
                        && !r.splitting
                        && l.recovered_paths.is_empty()
                        && r.recovered_paths.is_empty()
                        && l.desc.end.as_deref() == Some(&r.desc.start[..])
                }
                _ => false,
            }
        };
        if !ok {
            return false;
        }
        self.begin_merge(left, right);
        true
    }

    /// Marks both daughters as mid-structural-op and starts driving the
    /// pending merge (flush both, then ask the master for an intent).
    fn begin_merge(self: &Rc<Self>, left: RegionId, right: RegionId) {
        {
            let mut regions = self.regions.borrow_mut();
            for id in [left, right] {
                if let Some(st) = regions.get_mut(&id) {
                    st.splitting = true;
                }
            }
        }
        self.merge_stats.considered.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.consider", || {
                format!("server={} left={} right={}", self.id, left, right)
            });
        *self.pending_merge.borrow_mut() = Some(PendingMerge {
            left,
            right,
            flush_issued: false,
            intent_sent: false,
        });
        self.advance_pending_merge();
    }

    /// Drives a pending merge forward: flush both daughters' memstores
    /// once, then ask the master for a durable merge intent. Anything
    /// the memstores absorb after the flush moves to the merged region
    /// at the flip, so both daughters keep serving throughout.
    fn advance_pending_merge(self: &Rc<Self>) {
        let (left, right, flush_issued, intent_sent) = {
            let p = self.pending_merge.borrow();
            let Some(p) = p.as_ref() else { return };
            (p.left, p.right, p.flush_issued, p.intent_sent)
        };
        if intent_sent {
            return; // waiting for the master's execute / denial
        }
        let mut gone = false;
        let mut flush_busy = false;
        let mut dirty = false;
        {
            let regions = self.regions.borrow();
            for id in [left, right] {
                match regions.get(&id) {
                    Some(st) => {
                        flush_busy |= st.flush_in_progress || st.flushing.is_some();
                        dirty |= !st.memstore.is_empty();
                    }
                    None => gone = true,
                }
            }
        }
        if gone {
            self.clear_pending_merge(left, right);
            return;
        }
        if flush_busy {
            return; // next check tick
        }
        if dirty && !flush_issued {
            if let Some(p) = self.pending_merge.borrow_mut().as_mut() {
                p.flush_issued = true;
            }
            self.flush_region(left);
            self.flush_region(right);
            return;
        }
        if let Some(p) = self.pending_merge.borrow_mut().as_mut() {
            p.intent_sent = true;
        }
        let Some(coord) = self.split_coord.borrow().clone() else {
            self.clear_pending_merge(left, right);
            return;
        };
        self.merge_stats.intents_requested.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.intent", || {
                format!("server={} left={} right={}", self.id, left, right)
            });
        let id = self.id;
        let net = Rc::clone(&self.net);
        net.send(self.node, coord.node(), 96, move || {
            coord.request_merge(id, left, right)
        });
    }

    /// Drops the pending merge and clears both daughters' structural-op
    /// flags (denial, abandonment or a vanished region).
    fn clear_pending_merge(&self, left: RegionId, right: RegionId) {
        self.pending_merge.borrow_mut().take();
        let mut regions = self.regions.borrow_mut();
        for id in [left, right] {
            if let Some(st) = regions.get_mut(&id) {
                st.splitting = false;
            }
        }
    }

    /// Master RPC: the merge request was rejected (stale assignment, an
    /// intent already in flight, or a non-adjacent pair). Both regions
    /// resume normal flush/compaction scheduling.
    pub fn merge_request_denied(&self, left: RegionId) {
        if !self.alive.get() {
            return;
        }
        let pair = self
            .pending_merge
            .borrow()
            .as_ref()
            .filter(|p| p.left == left)
            .map(|p| (p.left, p.right));
        if let Some((left, right)) = pair {
            self.merge_stats.aborted.inc();
            self.events
                .borrow()
                .record(self.sim.now(), "merge.denied", || {
                    format!("server={} left={} right={}", self.id, left, right)
                });
            self.clear_pending_merge(left, right);
        }
    }

    /// Master RPC: the merge intent is durable — execute. Builds the
    /// merged region's reference files over both daughters' store files,
    /// makes their marker files durable in the filesystem (so a failover
    /// can resolve the merged region's file set), then flips atomically.
    pub fn execute_merge(self: &Rc<Self>, left: RegionId, right: RegionId, merged: RegionId) {
        if !self.alive.get() {
            return;
        }
        let matches = self
            .pending_merge
            .borrow()
            .as_ref()
            .map(|p| p.left == left && p.right == right)
            .unwrap_or(false);
        if !matches {
            // We no longer recognize this intent (e.g. abandoned); tell
            // the master to roll it back rather than leaving it dangling.
            self.notify_merge_aborted(left);
            return;
        }
        // Both daughters' file sets must be quiescent before references
        // are cut over them. Retry shortly (fixed delay, no RNG).
        let busy = {
            let regions = self.regions.borrow();
            [left, right].iter().any(|id| {
                regions
                    .get(id)
                    .map(|st| {
                        st.compaction_in_progress || st.flush_in_progress || st.flushing.is_some()
                    })
                    .unwrap_or(false)
            })
        };
        if busy {
            let this = Rc::clone(self);
            self.sim
                .schedule_in(SimDuration::from_millis(200), move || {
                    this.execute_merge(left, right, merged)
                });
            return;
        }
        self.merge_stats.executing.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.execute", || {
                format!(
                    "server={} left={} right={} merged={}",
                    self.id, left, right, merged
                )
            });
        let sources: Vec<(RegionDescriptor, Vec<(Rc<StoreFileData>, u32)>)> = {
            let regions = self.regions.borrow();
            let mut out = Vec::with_capacity(2);
            for id in [left, right] {
                let Some(st) = regions.get(&id) else {
                    drop(regions);
                    self.notify_merge_aborted(left);
                    self.clear_pending_merge(left, right);
                    return;
                };
                out.push((
                    st.desc.clone(),
                    st.storefiles
                        .iter()
                        .map(|sf| (Rc::clone(sf), st.level_of(sf.path())))
                        .collect(),
                ));
            }
            out
        };
        let merged_desc = RegionDescriptor {
            id: merged,
            start: sources[0].0.start.clone(),
            end: sources[1].0.end.clone(),
        };
        let mut files: Vec<(Rc<StoreFileData>, u32)> = Vec::new();
        let mut markers: Vec<(String, Bytes)> = Vec::new();
        for (src_desc, src_files) in &sources {
            for (sf, level) in src_files {
                let base = sf.path().rsplit('/').next().unwrap_or("file").to_owned();
                // The source region id disambiguates: both daughters may
                // hold references with the same base name after earlier
                // splits of a common ancestor.
                let path = format!("/store/{merged}/ref-{}-{base}", src_desc.id.0);
                if let Some(r) = StoreFileData::reference(
                    sf,
                    merged,
                    path,
                    &src_desc.start[..],
                    src_desc.end.as_deref(),
                ) {
                    let r = Rc::new(r);
                    // The daughter's physical file must outlive this
                    // reference; the registry tracks the hold.
                    self.registry.add_backing_ref(r.backing_path());
                    self.registry.insert(Rc::clone(&r));
                    markers.push((r.path().to_owned(), encode_ref_marker(&r)));
                    files.push((r, *level));
                }
            }
        }
        let work = Rc::new(MergeWork {
            left,
            right,
            merged,
            merged_desc,
            files,
            markers,
        });
        self.write_merge_markers(work, 0);
    }

    /// Writes reference marker file `idx` to the filesystem, then
    /// recurses; once all are durable the flip runs. A crash mid-way
    /// leaves only orphaned markers under the merged region's directory,
    /// which the region map never learns about — the master's failover
    /// rolls the intent back and recovers both daughters from their
    /// untouched files.
    fn write_merge_markers(self: &Rc<Self>, work: Rc<MergeWork>, idx: usize) {
        if !self.alive.get() {
            return;
        }
        if idx == work.markers.len() {
            self.finish_merge(&work);
            return;
        }
        let (path, content) = work.markers[idx].clone();
        let weak = Rc::downgrade(self);
        self.dfs.create(&path, move |file| {
            let Some(server) = weak.upgrade() else { return };
            let Ok(file) = file else {
                server.abort_granted_merge(&work);
                return;
            };
            let weak = weak.clone();
            file.append(content, move |result| {
                let Some(server) = weak.upgrade() else { return };
                if !server.alive.get() {
                    return;
                }
                if result.is_err() {
                    server.abort_granted_merge(&work);
                    return;
                }
                server.write_merge_markers(work, idx + 1);
            });
        });
    }

    /// Server-side rollback of a granted merge intent (marker writes
    /// failed): unregister the references, release the backing holds
    /// (both daughters still own their physical files, so nothing is
    /// deleted), best-effort delete the markers, and tell the master.
    fn abort_granted_merge(self: &Rc<Self>, work: &MergeWork) {
        for (sf, _) in &work.files {
            self.registry.remove(sf.path());
            let _ = self.registry.release_backing_ref(sf.backing_path());
        }
        for (path, _) in &work.markers {
            self.dfs.delete(path);
        }
        self.merge_stats.aborted.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.abort", || {
                format!("server={} left={} right={}", self.id, work.left, work.right)
            });
        self.clear_pending_merge(work.left, work.right);
        self.notify_merge_aborted(work.left);
    }

    fn notify_merge_aborted(&self, left: RegionId) {
        let Some(coord) = self.split_coord.borrow().clone() else {
            return;
        };
        let id = self.id;
        self.net.send(self.node, coord.node(), 48, move || {
            coord.merge_aborted(id, left)
        });
    }

    /// The atomic flip, in reverse of [`RegionServer::finish_split`]: in
    /// one event both daughter region states are removed and the merged
    /// region appears online — reference files as its store stack, both
    /// daughters' leftover memstores combined (their ranges are
    /// disjoint). At no instant are a daughter and the merged region
    /// both servable. The master is then told to apply the map change.
    fn finish_merge(self: &Rc<Self>, work: &MergeWork) {
        if !self.alive.get() {
            return;
        }
        let superseded = {
            let mut regions = self.regions.borrow_mut();
            if !regions.contains_key(&work.left) || !regions.contains_key(&work.right) {
                drop(regions);
                self.abort_granted_merge(work);
                return;
            }
            let l = regions.remove(&work.left).expect("checked");
            let r = regions.remove(&work.right).expect("checked");
            // Leftover memstore entries (absorbed since the pre-merge
            // flush; all covered by WAL records the failover remaps by
            // row) combine — the daughters' ranges are disjoint.
            let mut memstore = MemStore::new();
            for src in [&l, &r] {
                for (row, c, ts, v) in src.memstore.iter() {
                    memstore.apply(row.clone(), c.clone(), ts, v.clone());
                }
            }
            // A daughter file that is itself a reference (the daughter
            // came from an earlier split or merge) is superseded: the
            // new references back directly onto the physical file and
            // hold their own counts. Retirement is destructive, so it
            // runs after the flip behind the coordination fence (see
            // `finish_split`).
            let superseded: Vec<Rc<StoreFileData>> = l
                .storefiles
                .iter()
                .chain(r.storefiles.iter())
                .filter(|sf| sf.is_reference())
                .cloned()
                .collect();
            regions.insert(
                work.merged,
                RegionState {
                    desc: work.merged_desc.clone(),
                    memstore,
                    flushing: None,
                    storefiles: work.files.iter().map(|(f, _)| Rc::clone(f)).collect(),
                    file_levels: work
                        .files
                        .iter()
                        .filter(|(_, lv)| *lv > 0)
                        .map(|(f, lv)| (f.path().to_owned(), *lv))
                        .collect(),
                    recovered_paths: Vec::new(),
                    online: true,
                    flush_in_progress: false,
                    compaction_in_progress: false,
                    splitting: false,
                },
            );
            superseded
        };
        // The daughters' cached blocks belong to regions that no longer
        // exist; the merged region refills under its own id.
        for id in [work.left, work.right] {
            self.cache.borrow_mut().evict_region(id);
        }
        // The daughters' accumulated load history moves to the merged
        // region — the placement signal must not read a server that just
        // merged two warm regions as suddenly idle.
        let load = self.split_stats.region_load.get(work.left.0 as u64)
            + self.split_stats.region_load.get(work.right.0 as u64);
        self.split_stats.region_load.remove(work.left.0 as u64);
        self.split_stats.region_load.remove(work.right.0 as u64);
        self.split_stats.region_load.add(work.merged.0 as u64, load);
        self.pending_merge.borrow_mut().take();
        self.merge_stats.completed.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.flip", || {
                format!(
                    "server={} left={} right={} merged={}",
                    self.id, work.left, work.right, work.merged
                )
            });
        self.update_file_metrics();
        if !superseded.is_empty() {
            self.retire_superseded_references(superseded);
        }
        if let Some(coord) = self.split_coord.borrow().clone() {
            let id = self.id;
            let left = work.left;
            self.net.send(self.node, coord.node(), 64, move || {
                coord.merge_completed(id, left)
            });
        }
    }

    // ------------------------------------------------------------------
    // Master-driven region moves (proactive load shedding)
    // ------------------------------------------------------------------

    /// Master RPC: close `region` so it can reopen on another server.
    /// The region goes offline immediately (requests get NotServing, as
    /// during a failover), its memstore is flushed, and once the file
    /// set is quiescent the state is dropped and `done(true)` reports
    /// back. Refuses (`done(false)`) when the region is mid-flight in
    /// any other operation; a crash mid-close simply never reports, and
    /// the master's failover of this server recovers the region — still
    /// assigned here — through the normal WAL path.
    pub fn prepare_move(self: &Rc<Self>, region: RegionId, done: Box<dyn FnOnce(bool)>) {
        if !self.alive.get() {
            return;
        }
        let ok = self.pending_move.borrow().is_none() && !self.cfg.replication.enabled && {
            let regions = self.regions.borrow();
            regions
                .get(&region)
                .map(|st| {
                    st.online
                        && !st.splitting
                        && !st.compaction_in_progress
                        && st.recovered_paths.is_empty()
                })
                .unwrap_or(false)
        };
        if !ok {
            done(false);
            return;
        }
        {
            let mut regions = self.regions.borrow_mut();
            let st = regions.get_mut(&region).expect("checked above");
            st.online = false;
            // The structural-op flag keeps flush checks and compaction
            // candidacy away while this close drives the flush itself.
            st.splitting = true;
        }
        *self.pending_move.borrow_mut() = Some(region);
        self.events
            .borrow()
            .record(self.sim.now(), "move.close", || {
                format!("server={} region={}", self.id, region)
            });
        self.advance_pending_move(region, done, 0);
    }

    /// Polls the moving region toward quiescence (fixed 200ms steps, no
    /// RNG): flush anything dirty, wait out in-flight flushes, then drop
    /// the state and acknowledge. Gives up (reopening the region in
    /// place) if the filesystem stays unavailable past the attempt cap.
    fn advance_pending_move(
        self: &Rc<Self>,
        region: RegionId,
        done: Box<dyn FnOnce(bool)>,
        attempts: u32,
    ) {
        const MAX_ATTEMPTS: u32 = 50;
        if !self.alive.get() {
            return;
        }
        let (gone, busy, dirty) = {
            let regions = self.regions.borrow();
            match regions.get(&region) {
                Some(st) => (
                    false,
                    st.flush_in_progress || st.flushing.is_some(),
                    !st.memstore.is_empty(),
                ),
                None => (true, false, false),
            }
        };
        if gone {
            self.pending_move.borrow_mut().take();
            done(false);
            return;
        }
        if busy || dirty {
            if attempts >= MAX_ATTEMPTS {
                // Filesystem unavailable: abandon the move and resume
                // serving in place — the region lost availability for
                // the poll window, not its data.
                {
                    let mut regions = self.regions.borrow_mut();
                    if let Some(st) = regions.get_mut(&region) {
                        st.online = true;
                        st.splitting = false;
                    }
                }
                self.pending_move.borrow_mut().take();
                done(false);
                return;
            }
            if dirty && !busy {
                self.flush_region(region);
            }
            let this = Rc::clone(self);
            self.sim
                .schedule_in(SimDuration::from_millis(200), move || {
                    this.advance_pending_move(region, done, attempts + 1)
                });
            return;
        }
        self.regions.borrow_mut().remove(&region);
        self.cache.borrow_mut().evict_region(region);
        self.split_stats.region_load.remove(region.0 as u64);
        self.pending_move.borrow_mut().take();
        self.update_file_metrics();
        self.events
            .borrow()
            .record(self.sim.now(), "move.closed", || {
                format!("server={} region={}", self.id, region)
            });
        done(true);
    }

    /// Refreshes the gauges derived from the current file sets: the
    /// worst-case read amplification, the filter-metadata footprint and
    /// the per-level file/byte profile. (Order-independent reductions
    /// over the region map, so HashMap iteration order is harmless.)
    fn update_file_metrics(&self) {
        let regions = self.regions.borrow();
        let max_files = regions
            .values()
            .map(|st| st.storefiles.len() + usize::from(st.flushing.is_some()))
            .max()
            .unwrap_or(0);
        self.compaction_stats
            .read_amplification
            .set(max_files as u64);
        let filter_bytes: usize = regions
            .values()
            .flat_map(|st| st.flushing.iter().chain(st.storefiles.iter()))
            .map(|sf| sf.filter_bytes())
            .sum();
        self.filter_stats.filter_bytes.set(filter_bytes as u64);
        let mut level_files: Vec<u64> = Vec::new();
        let mut level_bytes: Vec<u64> = Vec::new();
        let mut bump = |level: usize, bytes: u64| {
            if level_files.len() <= level {
                level_files.resize(level + 1, 0);
                level_bytes.resize(level + 1, 0);
            }
            level_files[level] += 1;
            level_bytes[level] += bytes;
        };
        // lint:allow(CD001, reason = "order-independent reduction: bump() only adds into per-level counters, so the final gauge values do not depend on region visit order")
        for st in regions.values() {
            if let Some(fl) = &st.flushing {
                bump(0, fl.total_bytes() as u64);
            }
            for sf in &st.storefiles {
                bump(st.level_of(sf.path()) as usize, sf.total_bytes() as u64);
            }
        }
        self.compaction_stats.level_files.set_all(level_files);
        self.compaction_stats.level_bytes.set_all(level_bytes);
    }

    // ------------------------------------------------------------------
    // Primary/backup replication (see ARCHITECTURE.md, "Region
    // replication": ship protocol, epoch fencing, promotion vs replay)
    // ------------------------------------------------------------------

    /// Installs the master's replication coordination surface (cluster
    /// wiring; lane-drop reports are inert without it).
    pub fn set_replication_coordinator(&self, coord: Rc<dyn crate::hooks::ReplicationCoordinator>) {
        *self.repl_coord.borrow_mut() = Some(coord);
    }

    /// Replication observability: ship/ack/fence counters and the
    /// backlog/lag gauges (shared handles; clone freely).
    pub fn replication_stats(&self) -> &ReplicationStats {
        &self.repl_stats
    }

    /// Whether this server fenced itself out of `region` (a backup holds
    /// a newer replica-group epoch).
    pub fn region_fenced(&self, region: RegionId) -> bool {
        self.repl
            .borrow()
            .groups
            .get(&region)
            .map(|g| g.fenced)
            .unwrap_or(false)
    }

    /// Regions this server currently keeps a backup shadow for (sorted).
    pub fn shadow_regions(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self.repl.borrow().shadows.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether the shadow for `region` is in sync with its primary.
    pub fn shadow_synced(&self, region: RegionId) -> bool {
        self.repl
            .borrow()
            .shadows
            .get(&region)
            .map(|s| s.synced)
            .unwrap_or(false)
    }

    /// Master RPC: (re)establishes the replica group this server leads
    /// for `region`. Every lane starts (or resets to) out of sync — the
    /// next full-state sync brings it in, and only from then on do
    /// client acks gate on it. Pending gates are released: no lane is in
    /// sync anymore, and the syncs that follow carry the full state the
    /// gated writes are part of.
    pub fn establish_replica_group(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        backups: Vec<(ServerId, NodeId, Weak<RegionServer>)>,
    ) {
        if !self.alive.get() {
            return;
        }
        let finishes = {
            let mut repl = self.repl.borrow_mut();
            let group = repl.groups.entry(region).or_insert_with(|| ReplGroup {
                epoch,
                next_seq: 0,
                lanes: Vec::new(),
                gates: std::collections::BTreeMap::new(),
                fenced: false,
            });
            group.epoch = epoch;
            group.fenced = false;
            group.lanes = backups
                .into_iter()
                .map(|(backup, node, handle)| ReplLane {
                    backup,
                    handle,
                    node,
                    acked_seq: 0,
                    pending: std::collections::BTreeMap::new(),
                    backlog_bytes: 0,
                    synced: false,
                    drop_pending: false,
                    sync_seq: None,
                })
                .collect();
            group.lanes.sort_unstable_by_key(|l| l.backup);
            let mut finishes: Vec<Box<dyn FnOnce(Result<(), StoreError>)>> = Vec::new();
            let seqs: Vec<u64> = group.gates.keys().copied().collect();
            for seq in seqs {
                if let Some(gate) = group.gates.remove(&seq) {
                    if let Some(f) = gate.finish {
                        finishes.push(f);
                    }
                }
            }
            finishes
        };
        self.events
            .borrow()
            .record(self.sim.now(), "replication.establish", || {
                format!("server={} region={region} epoch={epoch}", self.id)
            });
        for f in finishes {
            f(Ok(()));
        }
        self.update_repl_gauges();
    }

    /// Master RPC: this server is (or stays) a backup for `region` under
    /// `epoch`. The shadow is created if missing and always marked out
    /// of sync — the primary's next full-state sync re-baselines it
    /// (sequence numbers from different primaries must never be mixed).
    pub fn open_shadow(&self, region: RegionId, desc: RegionDescriptor, epoch: u64) {
        if !self.alive.get() {
            return;
        }
        {
            let mut repl = self.repl.borrow_mut();
            let shadow = repl.shadows.entry(region).or_insert_with(|| ShadowRegion {
                desc: desc.clone(),
                epoch,
                next_seq: 0,
                memstore: MemStore::new(),
                storefile_paths: Vec::new(),
                synced: false,
                split_intent: None,
            });
            shadow.desc = desc;
            shadow.epoch = shadow.epoch.max(epoch);
            shadow.synced = false;
        }
        self.events
            .borrow()
            .record(self.sim.now(), "replication.shadow_open", || {
                format!("server={} region={region} epoch={epoch}", self.id)
            });
    }

    /// Master RPC: `region`'s shadow is obsolete (parent of an applied
    /// split, or this backup left the group).
    pub fn close_shadow(&self, region: RegionId, epoch: u64) {
        if !self.alive.get() {
            return;
        }
        let removed = {
            let mut repl = self.repl.borrow_mut();
            match repl.shadows.get(&region) {
                Some(s) if s.epoch <= epoch => repl.shadows.remove(&region).is_some(),
                _ => false,
            }
        };
        if removed {
            self.events
                .borrow()
                .record(self.sim.now(), "replication.shadow_close", || {
                    format!("server={} region={region}", self.id)
                });
        }
    }

    /// Master RPC: a backup lane's server died; stop shipping and stop
    /// gating on it.
    pub fn drop_replica_lane(&self, region: RegionId, backup: ServerId) {
        if !self.alive.get() {
            return;
        }
        let finishes = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                return;
            };
            group.lanes.retain(|l| l.backup != backup);
            for gate in group.gates.values_mut() {
                gate.waiting.retain(|b| *b != backup);
            }
            drain_ready_gates(group)
        };
        self.events
            .borrow()
            .record(self.sim.now(), "replication.drop_lane", || {
                format!("server={} region={region} backup={backup}", self.id)
            });
        for f in finishes {
            f(Ok(()));
        }
        self.update_repl_gauges();
    }

    /// Master RPC (promotion probe): reports this backup's view of
    /// `region` — shadow epoch, applied-through sequence and sync state.
    pub fn query_replica(&self, region: RegionId, reply: Box<dyn FnOnce(u64, u64, bool)>) {
        if !self.alive.get() {
            return;
        }
        let (epoch, seq, synced) = self
            .repl
            .borrow()
            .shadows
            .get(&region)
            .map(|s| (s.epoch, s.next_seq, s.synced))
            .unwrap_or((0, 0, false));
        reply(epoch, seq, synced);
    }

    /// Master RPC: this backup won the promotion for `region` after
    /// `failed`'s crash. The shadow converts into a hosted (offline)
    /// region; its inherited memstore is flushed (the shadow's data is
    /// durable only in the dead primary's WAL until then) and the
    /// regular recovery gating runs with `promoted = true` — the
    /// recovery manager replays only the transaction-log suffix above
    /// the persisted floor instead of waiting for a full WAL split.
    pub fn promote_replica(self: &Rc<Self>, region: RegionId, epoch: u64, failed: ServerId) {
        if !self.alive.get() {
            return;
        }
        let shadow = self.repl.borrow_mut().shadows.remove(&region);
        let Some(shadow) = shadow else {
            return;
        };
        let storefiles: Vec<Rc<StoreFileData>> = shadow
            .storefile_paths
            .iter()
            .filter(|p| !compaction::is_tmp_path(p))
            .filter_map(|p| self.registry.get(p))
            .collect();
        self.regions.borrow_mut().insert(
            region,
            RegionState {
                desc: shadow.desc,
                memstore: shadow.memstore,
                flushing: None,
                storefiles,
                file_levels: HashMap::new(),
                recovered_paths: Vec::new(),
                online: false,
                flush_in_progress: false,
                compaction_in_progress: false,
                splitting: false,
            },
        );
        self.events
            .borrow()
            .record(self.sim.now(), "replication.promote", || {
                format!(
                    "server={} region={region} epoch={epoch} failed={failed}",
                    self.id
                )
            });
        self.update_file_metrics();
        self.flush_region(region);
        self.finish_region_open(region, Some(failed), true);
    }

    /// Ships one committed write-set portion to every in-sync backup
    /// lane. Returns the gate sequence to arm when at least one lane was
    /// shipped (the client ack must wait for those acks), `None` when
    /// the region is unreplicated or no lane is in sync.
    fn ship_to_replicas(
        self: &Rc<Self>,
        region: RegionId,
        ts: Timestamp,
        mutations: &[Mutation],
    ) -> Option<u64> {
        if self.repl.borrow().groups.is_empty() {
            return None;
        }
        let bytes: usize = 40
            + mutations
                .iter()
                .map(|m| {
                    m.row.len()
                        + m.column.len()
                        + match &m.kind {
                            crate::types::MutationKind::Put(v) => v.len(),
                            crate::types::MutationKind::Delete => 0,
                        }
                })
                .sum::<usize>();
        let mut laggards: Vec<ServerId> = Vec::new();
        let (seq, epoch, targets) = {
            let mut repl = self.repl.borrow_mut();
            let group = repl.groups.get_mut(&region)?;
            if group.fenced {
                return None;
            }
            let seq = group.next_seq;
            group.next_seq += 1;
            let epoch = group.epoch;
            let max_backlog = self.cfg.replication.max_backlog_bytes;
            let mut targets: Vec<(ServerId, NodeId, Rc<RegionServer>)> = Vec::new();
            for lane in group.lanes.iter_mut() {
                if !lane.synced || lane.drop_pending {
                    continue;
                }
                if lane.backlog_bytes + bytes > max_backlog {
                    laggards.push(lane.backup);
                    continue;
                }
                let Some(handle) = lane.handle.upgrade() else {
                    laggards.push(lane.backup);
                    continue;
                };
                lane.pending.insert(seq, bytes);
                lane.backlog_bytes += bytes;
                targets.push((lane.backup, lane.node, handle));
            }
            if targets.is_empty() {
                (seq, epoch, targets)
            } else {
                group.gates.insert(
                    seq,
                    ReplGate {
                        waiting: targets.iter().map(|(b, ..)| *b).collect(),
                        finish: None,
                    },
                );
                (seq, epoch, targets)
            }
        };
        for backup in laggards {
            self.begin_lane_drop(region, backup);
        }
        if targets.is_empty() {
            return None;
        }
        for (backup, node, handle) in targets {
            self.repl_stats.ships.inc();
            self.repl_stats.ship_bytes.add(bytes as u64);
            self.trace.borrow().record(self.sim.now(), "repl.ship", || {
                format!(
                    "server={} region={region} seq={seq} backup={backup} bytes={bytes}",
                    self.id
                )
            });
            let muts = mutations.to_vec();
            let reply = self.ack_reply(region, epoch, backup, node);
            self.net.send(self.node, node, bytes, move || {
                handle.apply_shipped(region, epoch, seq, ts, muts, reply);
            });
            self.schedule_ack_timeout(region, epoch, backup, seq);
        }
        self.update_repl_gauges();
        Some(seq)
    }

    /// Builds the reply closure a backup invokes to ack a ship: one
    /// network hop back to this primary.
    fn ack_reply(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        backup_node: NodeId,
    ) -> Box<dyn FnOnce(ReplAck)> {
        let this = Rc::clone(self);
        let net = Rc::clone(&self.net);
        Box::new(move |ack| {
            let node = this.node;
            net.send(backup_node, node, 40, move || {
                this.handle_repl_ack(region, epoch, backup, ack);
            });
        })
    }

    /// Declares the lane out of sync if `seq` is still unacked when the
    /// fixed timeout fires (a dead or partitioned backup must not hold
    /// client acks forever — but un-gating waits for the master's ack,
    /// see [`RegionServer::begin_lane_drop`]).
    fn schedule_ack_timeout(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        seq: u64,
    ) {
        let weak = Rc::downgrade(self);
        self.sim
            .schedule_in(self.cfg.replication.ack_timeout, move || {
                let Some(this) = weak.upgrade() else { return };
                if !this.alive.get() {
                    return;
                }
                let timed_out = {
                    let repl = this.repl.borrow();
                    repl.groups
                        .get(&region)
                        .filter(|g| g.epoch == epoch)
                        .and_then(|g| g.lanes.iter().find(|l| l.backup == backup))
                        .map(|l| l.synced && !l.drop_pending && l.pending.contains_key(&seq))
                        .unwrap_or(false)
                };
                if timed_out {
                    this.begin_lane_drop(region, backup);
                }
            });
    }

    /// Starts taking a lane out of sync: report it to the master and
    /// only release the lane's gates once the master acked. The report
    /// is the fencing point — the master now considers the backup
    /// ineligible for promotion, so acking clients without its coverage
    /// is sound. A primary partitioned from the master never receives
    /// the ack, never un-gates, and therefore never acks a write an
    /// eligible backup is missing.
    fn begin_lane_drop(self: &Rc<Self>, region: RegionId, backup: ServerId) {
        let epoch = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                return;
            };
            let Some(lane) = group.lanes.iter_mut().find(|l| l.backup == backup) else {
                return;
            };
            if !lane.synced || lane.drop_pending {
                return;
            }
            lane.drop_pending = true;
            group.epoch
        };
        self.repl_stats.lane_drops.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "replication.lane_unsynced", || {
                format!("server={} region={region} backup={backup}", self.id)
            });
        self.report_lane_unsynced(region, epoch, backup);
    }

    /// Sends (and re-sends on a fixed period until the master's ack
    /// lands) the ineligibility report for an out-of-sync lane.
    fn report_lane_unsynced(self: &Rc<Self>, region: RegionId, epoch: u64, backup: ServerId) {
        const REPORT_RETRY: SimDuration = SimDuration::from_millis(400);
        let Some(coord) = self.repl_coord.borrow().clone() else {
            // No master wiring (unit tests): release locally.
            self.finish_lane_drop(region, epoch, backup, false);
            return;
        };
        let still_pending = {
            let repl = self.repl.borrow();
            repl.groups
                .get(&region)
                .filter(|g| g.epoch == epoch)
                .and_then(|g| g.lanes.iter().find(|l| l.backup == backup))
                .map(|l| l.drop_pending)
                .unwrap_or(false)
        };
        if !still_pending {
            return;
        }
        let master_node = coord.node();
        let done: Box<dyn FnOnce(bool)> = {
            let this = Rc::clone(self);
            let net = Rc::clone(&self.net);
            Box::new(move |stale| {
                let node = this.node;
                net.send(master_node, node, 32, move || {
                    this.finish_lane_drop(region, epoch, backup, stale);
                });
            })
        };
        self.net.send(self.node, master_node, 64, move || {
            coord.replica_unsynced(region, epoch, backup, done);
        });
        let weak = Rc::downgrade(self);
        self.sim.schedule_in(REPORT_RETRY, move || {
            if let Some(this) = weak.upgrade() {
                if this.alive.get() {
                    this.report_lane_unsynced(region, epoch, backup);
                }
            }
        });
    }

    /// The master answered the ineligibility report. Normally the lane
    /// leaves the gating set and its held gates release; a `stale`
    /// answer means this server is a fenced-out ex-primary — fence the
    /// whole group instead of un-gating (its held acks must fail, never
    /// succeed).
    fn finish_lane_drop(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        stale: bool,
    ) {
        if !self.alive.get() {
            return;
        }
        if stale {
            let matches = self
                .repl
                .borrow()
                .groups
                .get(&region)
                .map(|g| g.epoch == epoch)
                .unwrap_or(false);
            if matches {
                self.fence_group(region, epoch + 1);
            }
            return;
        }
        let finishes = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                return;
            };
            if group.epoch != epoch {
                return;
            }
            let Some(lane) = group.lanes.iter_mut().find(|l| l.backup == backup) else {
                return;
            };
            if !lane.drop_pending {
                return;
            }
            lane.drop_pending = false;
            lane.synced = false;
            lane.sync_seq = None;
            lane.pending.clear();
            lane.backlog_bytes = 0;
            for gate in group.gates.values_mut() {
                gate.waiting.retain(|b| *b != backup);
            }
            drain_ready_gates(group)
        };
        for f in finishes {
            f(Ok(()));
        }
        self.update_repl_gauges();
    }

    /// Attaches the completion of a gated client ack to its gate (the
    /// gate was registered by [`RegionServer::ship_to_replicas`] in the
    /// same event, so it still exists unless the group was fenced or
    /// re-established in between).
    fn arm_gate(
        self: &Rc<Self>,
        region: RegionId,
        seq: u64,
        finish: Box<dyn FnOnce(Result<(), StoreError>)>,
    ) {
        let finishes = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                finish(Ok(()));
                return;
            };
            if group.fenced {
                finish(Err(StoreError::WrongRegion(region)));
                return;
            }
            match group.gates.get_mut(&seq) {
                Some(gate) => gate.finish = Some(finish),
                None => {
                    finish(Ok(()));
                    return;
                }
            }
            drain_ready_gates(group)
        };
        for f in finishes {
            f(Ok(()));
        }
    }

    /// Primary side: a backup's reply to a shipped record or sync.
    fn handle_repl_ack(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        ack: ReplAck,
    ) {
        if !self.alive.get() {
            return;
        }
        match ack {
            ReplAck::Applied(seq) => {
                self.repl_stats.acks.inc();
                let (finishes, resynced) = {
                    let mut repl = self.repl.borrow_mut();
                    let Some(group) = repl.groups.get_mut(&region) else {
                        return;
                    };
                    if group.epoch != epoch {
                        return;
                    }
                    let Some(lane) = group.lanes.iter_mut().find(|l| l.backup == backup) else {
                        return;
                    };
                    let mut resynced = false;
                    if lane.sync_seq == Some(seq) {
                        lane.sync_seq = None;
                        if !lane.synced && !lane.drop_pending {
                            lane.synced = true;
                            resynced = true;
                        }
                    }
                    if seq > lane.acked_seq || lane.acked_seq == 0 {
                        lane.acked_seq = seq;
                    }
                    let acked: Vec<u64> = lane.pending.range(..=seq).map(|(s, _)| *s).collect();
                    for s in acked {
                        if let Some(b) = lane.pending.remove(&s) {
                            lane.backlog_bytes = lane.backlog_bytes.saturating_sub(b);
                        }
                    }
                    for (s, gate) in group.gates.range_mut(..=seq) {
                        let _ = s;
                        gate.waiting.retain(|b| *b != backup);
                    }
                    (drain_ready_gates(group), resynced)
                };
                for f in finishes {
                    f(Ok(()));
                }
                if resynced {
                    self.events.borrow().record(
                        self.sim.now(),
                        "replication.lane_resynced",
                        || format!("server={} region={region} backup={backup}", self.id),
                    );
                    if let Some(coord) = self.repl_coord.borrow().clone() {
                        let node = self.node;
                        self.net.send(node, coord.node(), 48, move || {
                            coord.replica_synced(region, epoch, backup);
                        });
                    }
                }
                self.update_repl_gauges();
            }
            ReplAck::Gap(_) => {
                self.repl_stats.nacks.inc();
                self.begin_lane_drop(region, backup);
            }
            ReplAck::Stale(newer) => {
                self.repl_stats.nacks.inc();
                self.fence_group(region, newer);
            }
        }
    }

    /// A backup holds a newer epoch than this server's group: a
    /// promotion happened behind a partition and this server is a stale
    /// primary. Fence: the region goes offline (clients get
    /// `WrongRegion` and refresh their maps toward the new primary) and
    /// every gated-but-unacked write fails — it was never acknowledged,
    /// so failing it loses nothing the client could rely on.
    fn fence_group(self: &Rc<Self>, region: RegionId, newer_epoch: u64) {
        let finishes = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                return;
            };
            // A fence directive names the epoch that supersedes this
            // group; one that does not (a reply delayed across a
            // re-establish) is itself stale and must be ignored.
            if group.fenced || group.epoch >= newer_epoch {
                return;
            }
            group.fenced = true;
            let mut finishes: Vec<Box<dyn FnOnce(Result<(), StoreError>)>> = Vec::new();
            let seqs: Vec<u64> = group.gates.keys().copied().collect();
            for seq in seqs {
                if let Some(gate) = group.gates.remove(&seq) {
                    if let Some(f) = gate.finish {
                        finishes.push(f);
                    }
                }
            }
            for lane in group.lanes.iter_mut() {
                lane.pending.clear();
                lane.backlog_bytes = 0;
                lane.synced = false;
            }
            finishes
        };
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.online = false;
        }
        self.repl_stats.fenced.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "replication.fenced", || {
                format!(
                    "server={} region={region} newer_epoch={newer_epoch}",
                    self.id
                )
            });
        for f in finishes {
            f(Err(StoreError::WrongRegion(region)));
        }
        self.update_repl_gauges();
    }

    /// Backup side: applies one shipped write-set portion to the shadow.
    pub fn apply_shipped(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        seq: u64,
        ts: Timestamp,
        mutations: Vec<Mutation>,
        reply: Box<dyn FnOnce(ReplAck)>,
    ) {
        if !self.alive.get() {
            return;
        }
        if let Some(stale) = self.fence_check(region, epoch) {
            reply(stale);
            return;
        }
        let ack = {
            let mut repl = self.repl.borrow_mut();
            match repl.shadows.get_mut(&region) {
                None => ReplAck::Gap(seq),
                Some(shadow) if epoch < shadow.epoch => ReplAck::Stale(shadow.epoch),
                Some(shadow) if !shadow.synced || seq != shadow.next_seq => {
                    shadow.synced = false;
                    ReplAck::Gap(seq)
                }
                Some(shadow) => {
                    for m in &mutations {
                        shadow.memstore.apply_mutation(
                            m.row.clone(),
                            m.column.clone(),
                            ts,
                            &m.kind,
                        );
                    }
                    shadow.next_seq = seq + 1;
                    ReplAck::Applied(seq)
                }
            }
        };
        self.note_backup_ack(region, &ack);
        reply(ack);
    }

    /// Backup side: applies a full-state sync, re-baselining the shadow
    /// (this is what brings an out-of-sync lane back in).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_sync(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        seq: u64,
        desc: RegionDescriptor,
        paths: Vec<String>,
        snapshot: MemstoreSnapshot,
        reply: Box<dyn FnOnce(ReplAck)>,
    ) {
        if !self.alive.get() {
            return;
        }
        if let Some(stale) = self.fence_check(region, epoch) {
            reply(stale);
            return;
        }
        let ack = {
            let mut repl = self.repl.borrow_mut();
            let shadow = repl.shadows.entry(region).or_insert_with(|| ShadowRegion {
                desc: desc.clone(),
                epoch,
                next_seq: 0,
                memstore: MemStore::new(),
                storefile_paths: Vec::new(),
                synced: false,
                split_intent: None,
            });
            if epoch < shadow.epoch {
                ReplAck::Stale(shadow.epoch)
            } else {
                shadow.desc = desc;
                shadow.epoch = epoch;
                let mut ms = MemStore::new();
                for (row, col, ts, value) in snapshot {
                    ms.apply(row, col, ts, value);
                }
                shadow.memstore = ms;
                shadow.storefile_paths = paths;
                shadow.next_seq = seq + 1;
                shadow.synced = true;
                shadow.split_intent = None;
                ReplAck::Applied(seq)
            }
        };
        self.note_backup_ack(region, &ack);
        reply(ack);
    }

    /// Backup side: the primary is executing a split of `region`.
    pub fn apply_split_intent(
        self: &Rc<Self>,
        region: RegionId,
        epoch: u64,
        seq: u64,
        bottom: RegionId,
        top: RegionId,
        reply: Box<dyn FnOnce(ReplAck)>,
    ) {
        if !self.alive.get() {
            return;
        }
        if let Some(stale) = self.fence_check(region, epoch) {
            reply(stale);
            return;
        }
        let ack = {
            let mut repl = self.repl.borrow_mut();
            match repl.shadows.get_mut(&region) {
                None => ReplAck::Gap(seq),
                Some(shadow) if epoch < shadow.epoch => ReplAck::Stale(shadow.epoch),
                Some(shadow) if !shadow.synced || seq != shadow.next_seq => {
                    shadow.synced = false;
                    ReplAck::Gap(seq)
                }
                Some(shadow) => {
                    shadow.split_intent = Some((bottom, top));
                    shadow.next_seq = seq + 1;
                    ReplAck::Applied(seq)
                }
            }
        };
        if matches!(ack, ReplAck::Applied(_)) {
            self.events
                .borrow()
                .record(self.sim.now(), "replication.split_intent", || {
                    format!(
                        "server={} region={region} bottom={bottom} top={top}",
                        self.id
                    )
                });
        }
        self.note_backup_ack(region, &ack);
        reply(ack);
    }

    /// Peer side of the idle-lane epoch probe: replies `Stale` only when
    /// the probing server's epoch is superseded here — this server hosts
    /// `region` as primary, or holds a shadow under a newer epoch.
    /// Silence is the healthy answer; the probe repeats on the next
    /// re-sync tick. This is how a quiesced stale primary (nothing in
    /// flight when a partition cut it off, so no ack timeout ever fired)
    /// discovers a promotion it slept through and fences itself.
    pub fn probe_epoch(&self, region: RegionId, epoch: u64, reply: Box<dyn FnOnce(ReplAck)>) {
        if !self.alive.get() {
            return;
        }
        if let Some(stale) = self.fence_check(region, epoch) {
            reply(stale);
            return;
        }
        let newer = self
            .repl
            .borrow()
            .shadows
            .get(&region)
            .map(|s| s.epoch)
            .filter(|e| *e > epoch);
        if let Some(newer) = newer {
            let ack = ReplAck::Stale(newer);
            self.note_backup_ack(region, &ack);
            reply(ack);
        }
    }

    /// A ship addressed to a region this server now hosts as *primary*
    /// can only come from a stale ex-primary: fence it with this group's
    /// epoch (or one past the sender's, if the group is not established
    /// yet).
    fn fence_check(&self, region: RegionId, epoch: u64) -> Option<ReplAck> {
        if !self.regions.borrow().contains_key(&region) {
            return None;
        }
        let newer = self
            .repl
            .borrow()
            .groups
            .get(&region)
            .map(|g| g.epoch)
            .unwrap_or(epoch + 1)
            .max(epoch + 1);
        self.repl_stats.fences.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "replication.fence", || {
                format!(
                    "server={} region={region} stale_epoch={epoch} newer={newer}",
                    self.id
                )
            });
        Some(ReplAck::Stale(newer))
    }

    /// Counts backup-side outcomes (fence events are recorded at the
    /// rejection site).
    fn note_backup_ack(&self, region: RegionId, ack: &ReplAck) {
        match ack {
            ReplAck::Applied(_) => self.repl_stats.applied.inc(),
            ReplAck::Gap(_) => {}
            ReplAck::Stale(_) => {
                self.repl_stats.fences.inc();
                self.events
                    .borrow()
                    .record(self.sim.now(), "replication.fence", || {
                        format!("server={} region={region}", self.id)
                    });
            }
        }
    }

    /// Ships a full-state sync for `region` to backup lanes: every lane
    /// when `only_unsynced` is false (flush/compaction/split re-baseline),
    /// out-of-sync lanes only on the re-sync timer. Skipped while a
    /// flush snapshot is in flight — its data is in neither the memstore
    /// nor the durable file set yet; the flush completion re-ships.
    fn ship_sync_inner(self: &Rc<Self>, region: RegionId, only_unsynced: bool) {
        if !self.alive.get() {
            return;
        }
        let (desc, paths, snapshot) = {
            let regions = self.regions.borrow();
            let Some(st) = regions.get(&region) else {
                return;
            };
            if st.flush_in_progress || st.flushing.is_some() {
                return;
            }
            let snapshot: MemstoreSnapshot = st
                .memstore
                .iter()
                .map(|(r, c, ts, v)| (r.clone(), c.clone(), ts, v.clone()))
                .collect();
            (
                st.desc.clone(),
                st.storefiles
                    .iter()
                    .map(|sf| sf.path().to_owned())
                    .collect::<Vec<String>>(),
                snapshot,
            )
        };
        let bytes: usize = 96
            + paths.iter().map(|p| p.len()).sum::<usize>()
            + snapshot
                .iter()
                .map(|(r, c, _, v)| r.len() + c.len() + v.as_ref().map(|v| v.len()).unwrap_or(0))
                .sum::<usize>();
        let targets = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&region) else {
                return;
            };
            if group.fenced {
                return;
            }
            let epoch = group.epoch;
            let mut targets: Vec<(u64, u64, ServerId, NodeId, Rc<RegionServer>)> = Vec::new();
            for lane in group.lanes.iter_mut() {
                if lane.drop_pending || (only_unsynced && lane.synced) {
                    continue;
                }
                // One un-acked sync at a time per out-of-sync lane; the
                // next timer tick retries.
                if !lane.synced && lane.sync_seq.is_some() {
                    continue;
                }
                let Some(handle) = lane.handle.upgrade() else {
                    continue;
                };
                let seq = group.next_seq;
                group.next_seq += 1;
                lane.sync_seq = Some(seq);
                if lane.synced {
                    lane.pending.insert(seq, bytes);
                    lane.backlog_bytes += bytes;
                }
                targets.push((seq, epoch, lane.backup, lane.node, handle));
            }
            targets
        };
        for (seq, epoch, backup, node, handle) in targets {
            self.repl_stats.syncs.inc();
            self.repl_stats.ship_bytes.add(bytes as u64);
            self.events
                .borrow()
                .record(self.sim.now(), "replication.sync", || {
                    format!(
                        "server={} region={region} seq={seq} backup={backup} bytes={bytes}",
                        self.id
                    )
                });
            let desc = desc.clone();
            let paths = paths.clone();
            let snapshot = snapshot.clone();
            let reply = self.ack_reply(region, epoch, backup, node);
            self.net.send(self.node, node, bytes, move || {
                handle.apply_sync(region, epoch, seq, desc, paths, snapshot, reply);
            });
            self.schedule_ack_timeout(region, epoch, backup, seq);
        }
        self.update_repl_gauges();
    }

    /// Full-state sync to every lane of `region` (no-op when the region
    /// is unreplicated).
    fn ship_sync(self: &Rc<Self>, region: RegionId) {
        if self.repl.borrow().groups.contains_key(&region) {
            self.ship_sync_inner(region, false);
        }
    }

    /// The re-sync timer tick: bring out-of-sync lanes back via
    /// full-state syncs (regions in sorted order for determinism), and
    /// epoch-probe idle in-sync lanes — a primary with nothing in flight
    /// would otherwise never learn it was superseded behind a partition.
    fn check_resyncs(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        let (mut due, mut probes) = {
            let repl = self.repl.borrow();
            let due: Vec<RegionId> = repl
                .groups
                .iter()
                .filter(|(_, g)| {
                    !g.fenced
                        && g.lanes
                            .iter()
                            .any(|l| !l.synced && !l.drop_pending && l.sync_seq.is_none())
                })
                .map(|(r, _)| *r)
                .collect();
            let mut probes: Vec<(RegionId, u64, ServerId, NodeId, Rc<RegionServer>)> = Vec::new();
            // lint:allow(CD001, reason = "probes are only collected here; they are sorted by (region, backup) below before any send, so hash order never reaches the network")
            for (&region, group) in repl.groups.iter() {
                if group.fenced {
                    continue;
                }
                for lane in group.lanes.iter() {
                    if lane.synced
                        && !lane.drop_pending
                        && lane.pending.is_empty()
                        && lane.sync_seq.is_none()
                    {
                        if let Some(handle) = lane.handle.upgrade() {
                            probes.push((region, group.epoch, lane.backup, lane.node, handle));
                        }
                    }
                }
            }
            (due, probes)
        };
        due.sort_unstable();
        for region in due {
            self.ship_sync_inner(region, true);
        }
        probes.sort_unstable_by_key(|(region, _, backup, ..)| (*region, *backup));
        for (region, epoch, backup, node, handle) in probes {
            let reply = self.ack_reply(region, epoch, backup, node);
            self.net.send(self.node, node, 24, move || {
                handle.probe_epoch(region, epoch, reply);
            });
        }
    }

    /// Ships the split-intent notification to in-sync lanes (stream
    /// element, same contiguity rules as data ships).
    fn ship_split_intent(self: &Rc<Self>, parent: RegionId, bottom: RegionId, top: RegionId) {
        let targets = {
            let mut repl = self.repl.borrow_mut();
            let Some(group) = repl.groups.get_mut(&parent) else {
                return;
            };
            if group.fenced {
                return;
            }
            let epoch = group.epoch;
            let mut targets: Vec<(u64, u64, ServerId, NodeId, Rc<RegionServer>)> = Vec::new();
            for lane in group.lanes.iter_mut() {
                if !lane.synced || lane.drop_pending {
                    continue;
                }
                let Some(handle) = lane.handle.upgrade() else {
                    continue;
                };
                let seq = group.next_seq;
                group.next_seq += 1;
                lane.pending.insert(seq, 48);
                lane.backlog_bytes += 48;
                targets.push((seq, epoch, lane.backup, lane.node, handle));
            }
            targets
        };
        for (seq, epoch, backup, node, handle) in targets {
            self.repl_stats.ships.inc();
            let reply = self.ack_reply(parent, epoch, backup, node);
            self.net.send(self.node, node, 48, move || {
                handle.apply_split_intent(parent, epoch, seq, bottom, top, reply);
            });
            self.schedule_ack_timeout(parent, epoch, backup, seq);
        }
    }

    /// Moves the parent's replica group to the split daughters at the
    /// flip: daughters inherit the lanes (out of sync until the
    /// immediate full-state syncs ack), the parent's shadows close, and
    /// any write still gated on the parent fails with `WrongRegion` —
    /// the retry is idempotent by `(row, version)` and re-routes to a
    /// daughter after a map refresh.
    fn split_replica_groups(self: &Rc<Self>, parent: RegionId, bottom: RegionId, top: RegionId) {
        let (finishes, lanes) = {
            let mut repl = self.repl.borrow_mut();
            let Some(mut group) = repl.groups.remove(&parent) else {
                return;
            };
            let mut finishes: Vec<Box<dyn FnOnce(Result<(), StoreError>)>> = Vec::new();
            let seqs: Vec<u64> = group.gates.keys().copied().collect();
            for seq in seqs {
                if let Some(gate) = group.gates.remove(&seq) {
                    if let Some(f) = gate.finish {
                        finishes.push(f);
                    }
                }
            }
            let lanes: Vec<(ServerId, NodeId, Weak<RegionServer>)> = group
                .lanes
                .iter()
                .map(|l| (l.backup, l.node, l.handle.clone()))
                .collect();
            for daughter in [bottom, top] {
                repl.groups.insert(
                    daughter,
                    ReplGroup {
                        epoch: group.epoch,
                        next_seq: 0,
                        lanes: lanes
                            .iter()
                            .map(|(backup, node, handle)| ReplLane {
                                backup: *backup,
                                handle: handle.clone(),
                                node: *node,
                                acked_seq: 0,
                                pending: std::collections::BTreeMap::new(),
                                backlog_bytes: 0,
                                synced: false,
                                drop_pending: false,
                                sync_seq: None,
                            })
                            .collect(),
                        gates: std::collections::BTreeMap::new(),
                        fenced: false,
                    },
                );
            }
            (finishes, (group.epoch, lanes))
        };
        for f in finishes {
            f(Err(StoreError::WrongRegion(parent)));
        }
        let (epoch, lanes) = lanes;
        for (_, node, handle) in &lanes {
            let Some(handle) = handle.upgrade() else {
                continue;
            };
            let node = *node;
            self.net.send(self.node, node, 48, move || {
                handle.close_shadow(parent, epoch);
            });
        }
        self.ship_sync_inner(bottom, false);
        self.ship_sync_inner(top, false);
        self.update_repl_gauges();
    }

    /// Refreshes the replication gauges: total unacked backlog bytes and
    /// the worst shipped-minus-acked distance across in-sync lanes.
    fn update_repl_gauges(&self) {
        let repl = self.repl.borrow();
        let mut backlog = 0u64;
        let mut lag = 0u64;
        // lint:allow(CD001, reason = "order-independent reduction: a sum and a max over all lanes, both commutative")
        for group in repl.groups.values() {
            for lane in &group.lanes {
                backlog += lane.backlog_bytes as u64;
                if lane.synced {
                    let lane_lag = lane.pending.len() as u64;
                    lag = lag.max(lane_lag);
                }
            }
        }
        self.repl_stats.backlog_bytes.set(backlog);
        self.repl_stats.lag.set(lag);
    }

    /// Approximate bytes buffered in `region`'s memstore.
    pub fn memstore_bytes(&self, region: RegionId) -> usize {
        self.regions
            .borrow()
            .get(&region)
            .map(|st| st.memstore.approx_bytes())
            .unwrap_or(0)
    }

    /// Number of store files backing `region` on this server.
    pub fn storefile_count(&self, region: RegionId) -> usize {
        self.regions
            .borrow()
            .get(&region)
            .map(|st| st.storefiles.len())
            .unwrap_or(0)
    }

    /// Directly injects a store file into a hosted region (bulk load).
    /// Used by the workload loader; the file must already be registered.
    pub fn attach_storefile(&self, region: RegionId, data: Rc<StoreFileData>) {
        if let Some(st) = self.regions.borrow_mut().get_mut(&region) {
            st.storefiles.push(data);
        }
        self.update_file_metrics();
    }

    /// Pre-warms the block cache with the given rows (the paper warms the
    /// cache before measuring, §4.1).
    pub fn warm_cache(&self, region: RegionId, rows: impl IntoIterator<Item = Bytes>) {
        let mut cache = self.cache.borrow_mut();
        for row in rows {
            cache.insert(region, row);
        }
    }
}
