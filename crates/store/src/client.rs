//! The store client (the paper's "HBase client" library): region location
//! caching, request routing, timeouts and unbounded retries.
//!
//! The paper removes the client's retry and timeout limits so that an
//! interrupted flush keeps retrying until the affected region comes back
//! online (§3.2): "we work around this by removing the retry and timeout
//! limits so that the client keeps retrying until it succeeds."
//! [`StoreClient::get`], [`StoreClient::multi_get`], [`StoreClient::scan`]
//! and [`StoreClient::multi_put`] therefore retry forever; their callbacks
//! fire exactly once, on success. Scans additionally continue across
//! region boundaries, walking regions in key order one leg at a time.

use crate::master::{Master, ServerDirectory};
use crate::memstore::VersionedValue;
use crate::region::RegionMap;
use crate::types::{Mutation, RegionId, Timestamp, WriteSet};
use bytes::Bytes;
use cumulo_sim::metrics::Counter;
use cumulo_sim::{Network, NodeId, Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Store-client tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct StoreClientConfig {
    /// How long to wait for a response before treating the request as
    /// lost (dead or partitioned server).
    pub request_timeout: SimDuration,
    /// Delay before retrying a failed/timed-out request.
    pub retry_backoff: SimDuration,
    /// Cap on the exponential retry backoff.
    pub max_backoff: SimDuration,
    /// Continue scans across region boundaries (on by default). When
    /// off, [`StoreClient::scan`] reverts to the legacy behavior of
    /// serving only the region containing `start` — kept for calibrated
    /// experiments whose pinned baselines predate the continuation (the
    /// extra per-leg messages draw network-jitter RNG and would shift
    /// their event schedules).
    pub cross_region_scans: bool,
    /// Minimum spacing between region-map refresh fetches, plus an
    /// epoch check: a routing failure whose observed map epoch is
    /// already stale (the cache advanced since the op was routed) skips
    /// the fetch entirely. `ZERO` (the default) disables the debounce —
    /// every routing failure past the inflight flag triggers a fetch,
    /// the pre-debounce behavior calibrated experiments replay
    /// byte-for-byte. Enable on clusters where mass splits make whole
    /// client fleets re-fetch the full map per retrying op.
    pub min_refresh_interval: SimDuration,
}

impl Default for StoreClientConfig {
    fn default() -> Self {
        StoreClientConfig {
            request_timeout: SimDuration::from_millis(60),
            retry_backoff: SimDuration::from_millis(15),
            max_backoff: SimDuration::from_millis(500),
            cross_region_scans: true,
            min_refresh_interval: SimDuration::ZERO,
        }
    }
}

struct Inner {
    sim: Sim,
    net: Rc<Network>,
    from: NodeId,
    master: Rc<Master>,
    dir: Rc<ServerDirectory>,
    map: RefCell<RegionMap>,
    cfg: StoreClientConfig,
    refresh_inflight: Cell<bool>,
    /// Completion instant of the last map refresh, for the
    /// `min_refresh_interval` debounce (`None` = never refreshed).
    last_refresh: Cell<Option<u64>>,
    retries: Counter,
    gets_ok: Counter,
    puts_ok: Counter,
    multi_get_rpcs: Counter,
    multi_gets_ok: Counter,
    scan_leg_rpcs: Counter,
    scans_ok: Counter,
    refresh_skips: Counter,
}

/// A client-side handle to the distributed store. Cheap to clone.
#[derive(Clone)]
pub struct StoreClient {
    inner: Rc<Inner>,
}

impl fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreClient")
            .field("from", &self.inner.from)
            .field("retries", &self.inner.retries.get())
            .finish()
    }
}

impl StoreClient {
    /// Creates a client on node `from`, seeded with the master's current
    /// region map.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        from: NodeId,
        master: &Rc<Master>,
        dir: &Rc<ServerDirectory>,
        cfg: StoreClientConfig,
    ) -> StoreClient {
        StoreClient {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                net: Rc::clone(net),
                from,
                master: Rc::clone(master),
                dir: Rc::clone(dir),
                map: RefCell::new(master.snapshot_map()),
                cfg,
                refresh_inflight: Cell::new(false),
                last_refresh: Cell::new(None),
                retries: Counter::new(),
                gets_ok: Counter::new(),
                puts_ok: Counter::new(),
                multi_get_rpcs: Counter::new(),
                multi_gets_ok: Counter::new(),
                scan_leg_rpcs: Counter::new(),
                scans_ok: Counter::new(),
                refresh_skips: Counter::new(),
            }),
        }
    }

    /// The node requests are issued from.
    pub fn from_node(&self) -> NodeId {
        self.inner.from
    }

    /// Reads the newest version of `(row, column)` visible at `snapshot`.
    /// Retries (with location refresh) until it succeeds; `done` fires
    /// exactly once.
    pub fn get(
        &self,
        row: Bytes,
        column: Bytes,
        snapshot: Timestamp,
        done: impl FnOnce(Option<VersionedValue>) + 'static,
    ) {
        get_attempt(
            Rc::clone(&self.inner),
            row,
            column,
            snapshot,
            0,
            Box::new(done),
        );
    }

    /// Flushes one transaction's mutations for one region to its hosting
    /// server, retrying forever (paper §3.2). `floor` piggybacks the
    /// failed server's persisted threshold during server-recovery replay;
    /// `replay` write-sets may target regions still under recovery.
    pub fn multi_put(
        &self,
        region: RegionId,
        ts: Timestamp,
        mutations: Vec<Mutation>,
        floor: Option<Timestamp>,
        replay: bool,
        done: impl FnOnce() + 'static,
    ) {
        put_attempt(
            Rc::clone(&self.inner),
            region,
            ts,
            mutations,
            floor,
            replay,
            0,
            Box::new(done),
        );
    }

    /// Batched point read: fetches the newest version of every
    /// `(row, column)` in `cells` visible at `snapshot`, issuing **one
    /// RPC per region** (cells are grouped by the cached region map,
    /// mirroring [`StoreClient::group_write_set`] on the write path).
    /// Results are returned in input order; each entry is exactly what
    /// [`StoreClient::get`] would have returned for that cell. Groups
    /// retry independently (with location refresh and re-grouping after
    /// an online split) until every cell is served; `done` fires exactly
    /// once, on success of the whole batch.
    pub fn multi_get(
        &self,
        cells: Vec<(Bytes, Bytes)>,
        snapshot: Timestamp,
        done: impl FnOnce(Vec<Option<VersionedValue>>) + 'static,
    ) {
        let n = cells.len();
        if n == 0 {
            let sim = self.inner.sim.clone();
            sim.schedule_in(SimDuration::ZERO, move || done(Vec::new()));
            return;
        }
        let ctx = Rc::new(MultiGetCtx {
            results: RefCell::new(vec![None; n]),
            remaining: Cell::new(n),
            done: RefCell::new(Some(Box::new(done))),
        });
        let groups: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = {
            let map = self.inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = BTreeMap::new();
            for (i, (row, column)) in cells.into_iter().enumerate() {
                g.entry(map.region_for(&row))
                    .or_default()
                    .push((i, row, column));
            }
            g
        };
        for (region, group) in groups {
            multi_get_attempt(
                Rc::clone(&self.inner),
                region,
                group,
                snapshot,
                0,
                Rc::clone(&ctx),
            );
        }
    }

    /// Scans `[start, end)` at `snapshot` (end-exclusive; `None` = to
    /// the end of the table), returning up to `limit` cells in
    /// `(row, column)` order, merged across **every region the range
    /// covers** — not just the region containing `start`.
    ///
    /// The scan is a continuation loop walking regions in key order:
    /// each leg asks the region hosting the cursor for the *remaining*
    /// limit, and the reply ([`crate::ScanPage`]) carries the serving
    /// region's exclusive end bound, which becomes the next cursor. The
    /// resume key is server truth, so a split, merge, move or failover
    /// landing mid-scan neither drops nor duplicates cells at the new
    /// boundary: a failed leg retries *at the same cursor* with a
    /// refreshed map (the `WrongRegion`-style self-healing the write
    /// path uses), and snapshot reads are independent of region
    /// structure. Legacy single-region truncation is available via
    /// [`StoreClientConfig::cross_region_scans`]. Retries until served;
    /// `done` fires exactly once.
    pub fn scan(
        &self,
        start: Bytes,
        end: Option<Bytes>,
        snapshot: Timestamp,
        limit: usize,
        done: impl FnOnce(Vec<(Bytes, Bytes, VersionedValue)>) + 'static,
    ) {
        scan_leg(
            Rc::clone(&self.inner),
            start,
            end,
            snapshot,
            limit,
            Vec::new(),
            0,
            Box::new(done),
        );
    }

    /// Splits a write-set by destination region using the cached map.
    /// Boundaries can change under us (online splits), but a stale
    /// grouping self-heals: the server answers `WrongRegion` for a
    /// split-away region id and [`StoreClient::multi_put`] re-groups by
    /// the refreshed map before retrying.
    pub fn group_write_set(&self, ws: &WriteSet) -> BTreeMap<RegionId, Vec<Mutation>> {
        let map = self.inner.map.borrow();
        let mut out: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
        for m in &ws.mutations {
            out.entry(map.region_for(&m.row))
                .or_default()
                .push(m.clone());
        }
        out
    }

    /// The region containing `row` (static boundary lookup).
    pub fn region_for(&self, row: &[u8]) -> RegionId {
        self.inner.map.borrow().region_for(row)
    }

    /// Re-seeds the cached region map directly from the master (harness
    /// wiring for clients constructed before the table was bootstrapped;
    /// steady-state refreshes go through the network).
    pub fn reseed_region_map(&self) {
        *self.inner.map.borrow_mut() = self.inner.master.snapshot_map();
    }

    /// Total request retries performed (timeouts + not-serving).
    pub fn retry_count(&self) -> u64 {
        self.inner.retries.get()
    }

    /// Successful gets.
    pub fn gets_ok(&self) -> u64 {
        self.inner.gets_ok.get()
    }

    /// Batched-read RPCs issued to region servers (one per region per
    /// [`StoreClient::multi_get`] in the failure-free case; retries and
    /// post-split re-groups add more). The acceptance counter for "N
    /// cells spanning R regions cost exactly R round trips".
    pub fn multi_get_rpcs(&self) -> u64 {
        self.inner.multi_get_rpcs.get()
    }

    /// Per-region batched-read RPCs answered successfully.
    pub fn multi_gets_ok(&self) -> u64 {
        self.inner.multi_gets_ok.get()
    }

    /// Acknowledged multi-puts.
    pub fn puts_ok(&self) -> u64 {
        self.inner.puts_ok.get()
    }

    /// Per-region scan leg RPCs issued (continuation legs + retries; a
    /// scan confined to one region issues exactly one).
    pub fn scan_leg_rpcs(&self) -> u64 {
        self.inner.scan_leg_rpcs.get()
    }

    /// Completed scans (every continuation leg served).
    pub fn scans_ok(&self) -> u64 {
        self.inner.scans_ok.get()
    }

    /// Region-map refresh fetches skipped by the epoch / min-interval
    /// debounce ([`StoreClientConfig::min_refresh_interval`]).
    pub fn refresh_skips(&self) -> u64 {
        self.inner.refresh_skips.get()
    }
}

fn backoff(inner: &Inner, attempt: u32) -> SimDuration {
    let factor = 1u64 << attempt.min(5);
    let d = inner.cfg.retry_backoff * factor;
    let d = d.min(inner.cfg.max_backoff);
    inner.sim.jitter(d, 0.3)
}

/// Refreshes the cached region map from the master, debounced by the
/// inflight flag and — when [`StoreClientConfig::min_refresh_interval`]
/// is non-zero — by an epoch check and a minimum fetch spacing.
///
/// `observed_epoch` is the cached map's epoch at the moment the failed
/// operation was *routed*. If the cache has advanced past it, a refresh
/// already landed since that routing decision and re-fetching cannot
/// teach this client anything the retry will not already use — the
/// stampede after a mass-split storm, where every retrying op on every
/// client re-fetched the full map. With the default `ZERO` interval both
/// checks are skipped and the legacy fetch-per-failure behavior (and its
/// exact message schedule) is preserved.
fn refresh_map(inner: &Rc<Inner>, observed_epoch: u64) {
    if inner.refresh_inflight.get() {
        return;
    }
    if !inner.cfg.min_refresh_interval.is_zero() {
        if inner.map.borrow().epoch() > observed_epoch {
            inner.refresh_skips.inc();
            return;
        }
        if let Some(last) = inner.last_refresh.get() {
            let now = inner.sim.now().nanos();
            if now.saturating_sub(last) < inner.cfg.min_refresh_interval.nanos() {
                inner.refresh_skips.inc();
                return;
            }
        }
    }
    inner.refresh_inflight.set(true);
    let master = Rc::clone(&inner.master);
    let net = Rc::clone(&inner.net);
    let from = inner.from;
    let inner2 = Rc::clone(inner);
    inner.net.send(from, master.node(), 64, move || {
        let snapshot = master.snapshot_map();
        let size = 64 + snapshot.assignments().len() * 16;
        net.send(master.node(), from, size, move || {
            *inner2.map.borrow_mut() = snapshot;
            inner2.last_refresh.set(Some(inner2.sim.now().nanos()));
            inner2.refresh_inflight.set(false);
        });
    });
}

fn get_attempt(
    inner: Rc<Inner>,
    row: Bytes,
    column: Bytes,
    snapshot: Timestamp,
    attempt: u32,
    done: Box<dyn FnOnce(Option<VersionedValue>)>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    let (routed_epoch, server) = {
        let map = inner.map.borrow();
        (map.epoch(), map.locate(&row).1)
    };
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner, routed_epoch);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            get_attempt(inner2, row, column, snapshot, attempt + 1, done)
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let done_cell: Rc<RefCell<Option<Box<dyn FnOnce(Option<VersionedValue>)>>>> =
        Rc::new(RefCell::new(Some(done)));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let done_cell = Rc::clone(&done_cell);
        let (row2, col2) = (row.clone(), column.clone());
        inner.net.clone().send(
            from,
            server_node,
            64 + row.len() + column.len(),
            move || {
                let server2 = Rc::clone(&server);
                let net_back = Rc::clone(&net_back);
                server2.handle_get(row2.clone(), col2.clone(), snapshot, move |result| {
                    net_back.send(server_node, from, 96, move || {
                        if settled.get() {
                            return;
                        }
                        settled.set(true);
                        let done = done_cell.borrow_mut().take().expect("settled guards");
                        match result {
                            Ok(v) => {
                                inner.gets_ok.inc();
                                done(v);
                            }
                            Err(_) => {
                                // NotServing / unavailable: refresh and retry.
                                inner.retries.inc();
                                refresh_map(&inner, routed_epoch);
                                let wait = backoff(&inner, attempt);
                                let inner2 = Rc::clone(&inner);
                                inner.sim.schedule_in(wait, move || {
                                    get_attempt(inner2, row2, col2, snapshot, attempt + 1, done)
                                });
                            }
                        }
                    });
                });
            },
        );
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let done = done_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2, routed_epoch);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            get_attempt(inner3, row, column, snapshot, attempt + 1, done)
        });
    });
}

#[allow(clippy::too_many_arguments)]
fn put_attempt(
    inner: Rc<Inner>,
    region: RegionId,
    ts: Timestamp,
    mutations: Vec<Mutation>,
    floor: Option<Timestamp>,
    replay: bool,
    attempt: u32,
    done: Box<dyn FnOnce()>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    // The addressed region id may have been split away since the batch
    // was grouped (the server answers `WrongRegion` and a map refresh
    // landed): re-group the mutations by the current boundaries and fan
    // the batch out to the daughters, completing `done` once all parts
    // are acknowledged. Mutation replay stays idempotent (same commit
    // timestamp), so a partial earlier delivery is harmless.
    let must_regroup = {
        let map = inner.map.borrow();
        // An empty map just means the client pre-dates bootstrap; the
        // ordinary refresh-and-retry path below handles that.
        !map.regions().is_empty() && map.descriptor(region).is_none()
    };
    if must_regroup {
        let groups: BTreeMap<RegionId, Vec<Mutation>> = {
            let map = inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
            for m in mutations {
                g.entry(map.region_for(&m.row)).or_default().push(m);
            }
            g
        };
        if groups.is_empty() {
            done();
            return;
        }
        let pending = Rc::new(Cell::new(groups.len()));
        let done_cell: Rc<RefCell<Option<Box<dyn FnOnce()>>>> = Rc::new(RefCell::new(Some(done)));
        for (sub_region, muts) in groups {
            let pending2 = Rc::clone(&pending);
            let done_cell2 = Rc::clone(&done_cell);
            put_attempt(
                Rc::clone(&inner),
                sub_region,
                ts,
                muts,
                floor,
                replay,
                attempt,
                Box::new(move || {
                    pending2.set(pending2.get() - 1);
                    if pending2.get() == 0 {
                        let done = done_cell2.borrow_mut().take().expect("single completion");
                        done();
                    }
                }),
            );
        }
        return;
    }
    let (routed_epoch, server) = {
        let map = inner.map.borrow();
        (map.epoch(), map.server_for(region))
    };
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner, routed_epoch);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            put_attempt(
                inner2,
                region,
                ts,
                mutations,
                floor,
                replay,
                attempt + 1,
                done,
            )
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let done_cell: Rc<RefCell<Option<Box<dyn FnOnce()>>>> = Rc::new(RefCell::new(Some(done)));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    let size = 64 + mutations.iter().map(Mutation::wire_size).sum::<usize>();
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let done_cell = Rc::clone(&done_cell);
        let mutations2 = mutations.clone();
        inner.net.clone().send(from, server_node, size, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            let mutations3 = mutations2.clone();
            server2.handle_multi_put(region, ts, mutations2, floor, replay, move |result| {
                net_back.send(server_node, from, 48, move || {
                    if settled.get() {
                        return;
                    }
                    settled.set(true);
                    let done = done_cell.borrow_mut().take().expect("settled guards");
                    match result {
                        Ok(()) => {
                            inner.puts_ok.inc();
                            done();
                        }
                        Err(_) => {
                            inner.retries.inc();
                            refresh_map(&inner, routed_epoch);
                            let wait = backoff(&inner, attempt);
                            let inner2 = Rc::clone(&inner);
                            inner.sim.schedule_in(wait, move || {
                                put_attempt(
                                    inner2,
                                    region,
                                    ts,
                                    mutations3,
                                    floor,
                                    replay,
                                    attempt + 1,
                                    done,
                                )
                            });
                        }
                    }
                });
            });
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let done = done_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2, routed_epoch);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            put_attempt(
                inner3,
                region,
                ts,
                mutations,
                floor,
                replay,
                attempt + 1,
                done,
            )
        });
    });
}

/// Shared completion state of one [`StoreClient::multi_get`]: per-region
/// groups fill `results` independently; the last cell served fires
/// `done`.
struct MultiGetCtx {
    results: RefCell<Vec<Option<VersionedValue>>>,
    remaining: Cell<usize>,
    done: RefCell<Option<Box<dyn FnOnce(Vec<Option<VersionedValue>>)>>>,
}

fn multi_get_attempt(
    inner: Rc<Inner>,
    region: RegionId,
    group: Vec<(usize, Bytes, Bytes)>,
    snapshot: Timestamp,
    attempt: u32,
    ctx: Rc<MultiGetCtx>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    // The addressed region id may have been split away since the batch
    // was grouped: re-group this group's cells by the current boundaries
    // and fan out to the daughters (same self-healing as `put_attempt`).
    let must_regroup = {
        let map = inner.map.borrow();
        !map.regions().is_empty() && map.descriptor(region).is_none()
    };
    if must_regroup {
        let groups: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = {
            let map = inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = BTreeMap::new();
            for (i, row, column) in group {
                g.entry(map.region_for(&row))
                    .or_default()
                    .push((i, row, column));
            }
            g
        };
        for (sub_region, sub) in groups {
            multi_get_attempt(
                Rc::clone(&inner),
                sub_region,
                sub,
                snapshot,
                attempt,
                Rc::clone(&ctx),
            );
        }
        return;
    }
    let (routed_epoch, server) = {
        let map = inner.map.borrow();
        (map.epoch(), map.server_for(region))
    };
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner, routed_epoch);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            multi_get_attempt(inner2, region, group, snapshot, attempt + 1, ctx)
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    let size = 64
        + group
            .iter()
            .map(|(_, r, c)| 8 + r.len() + c.len())
            .sum::<usize>();
    inner.multi_get_rpcs.inc();
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let ctx = Rc::clone(&ctx);
        let group2 = group.clone();
        inner.net.clone().send(from, server_node, size, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            let cells: Vec<(Bytes, Bytes)> = group2
                .iter()
                .map(|(_, r, c)| (r.clone(), c.clone()))
                .collect();
            let group3 = group2.clone();
            server2.handle_multi_get(region, cells, snapshot, move |result| {
                let size = 48 + result.as_ref().map(|v| v.len() * 64).unwrap_or(0);
                net_back.send(server_node, from, size, move || {
                    if settled.get() {
                        return;
                    }
                    settled.set(true);
                    match result {
                        Ok(values) => {
                            inner.multi_gets_ok.inc();
                            complete_multi_get_group(&ctx, &group3, values);
                        }
                        Err(_) => {
                            inner.retries.inc();
                            refresh_map(&inner, routed_epoch);
                            let wait = backoff(&inner, attempt);
                            let inner2 = Rc::clone(&inner);
                            inner.sim.schedule_in(wait, move || {
                                multi_get_attempt(
                                    inner2,
                                    region,
                                    group3,
                                    snapshot,
                                    attempt + 1,
                                    ctx,
                                )
                            });
                        }
                    }
                });
            });
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        inner2.retries.inc();
        refresh_map(&inner2, routed_epoch);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            multi_get_attempt(inner3, region, group, snapshot, attempt + 1, ctx)
        });
    });
}

/// Writes one served group's values into the batch result (input order)
/// and fires the batch completion when the last cell lands.
fn complete_multi_get_group(
    ctx: &Rc<MultiGetCtx>,
    group: &[(usize, Bytes, Bytes)],
    values: Vec<Option<VersionedValue>>,
) {
    debug_assert_eq!(group.len(), values.len());
    {
        let mut results = ctx.results.borrow_mut();
        for ((i, _, _), vv) in group.iter().zip(values) {
            results[*i] = vv;
        }
    }
    ctx.remaining.set(ctx.remaining.get() - group.len());
    if ctx.remaining.get() == 0 {
        let done = ctx.done.borrow_mut().take().expect("single completion");
        done(std::mem::take(&mut *ctx.results.borrow_mut()));
    }
}

/// In-flight state of a cross-region scan: the cells accumulated by the
/// legs served so far plus the caller's completion. Travels intact
/// through leg retries — only a *served* page ever extends it.
struct ScanState {
    acc: Vec<(Bytes, Bytes, VersionedValue)>,
    done: Box<dyn FnOnce(Vec<(Bytes, Bytes, VersionedValue)>)>,
}

/// One continuation leg of a cross-region scan: asks the region hosting
/// `cursor` for up to `remaining` cells of `[cursor, end)`, then either
/// completes the scan or recurses at the served region's end bound (see
/// [`crate::ScanPage`]). Errors and timeouts retry the *same* leg —
/// same cursor, same remaining budget, accumulated cells untouched —
/// after a map refresh, so a split, merge, move or failover landing
/// mid-scan cannot drop or duplicate cells: the cursor only ever
/// advances to a bound some server actually served through.
#[allow(clippy::too_many_arguments)]
fn scan_leg(
    inner: Rc<Inner>,
    cursor: Bytes,
    end: Option<Bytes>,
    snapshot: Timestamp,
    remaining: usize,
    acc: Vec<(Bytes, Bytes, VersionedValue)>,
    attempt: u32,
    done: Box<dyn FnOnce(Vec<(Bytes, Bytes, VersionedValue)>)>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    let (routed_epoch, server) = {
        let map = inner.map.borrow();
        (map.epoch(), map.locate(&cursor).1)
    };
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner, routed_epoch);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            scan_leg(
                inner2,
                cursor,
                end,
                snapshot,
                remaining,
                acc,
                attempt + 1,
                done,
            )
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let state_cell: Rc<RefCell<Option<ScanState>>> =
        Rc::new(RefCell::new(Some(ScanState { acc, done })));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    inner.scan_leg_rpcs.inc();
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let state_cell = Rc::clone(&state_cell);
        let (cursor2, end2) = (cursor.clone(), end.clone());
        inner.net.clone().send(from, server_node, 96, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            server2.handle_scan(
                cursor2.clone(),
                end2.clone(),
                snapshot,
                remaining,
                move |result| {
                    let size = 64 + result.as_ref().map(|p| p.cells.len() * 64).unwrap_or(0);
                    net_back.send(server_node, from, size, move || {
                        if settled.get() {
                            return;
                        }
                        settled.set(true);
                        let state = state_cell.borrow_mut().take().expect("settled guards");
                        match result {
                            Ok(page) => advance_scan(inner, end2, snapshot, remaining, state, page),
                            Err(_) => {
                                inner.retries.inc();
                                refresh_map(&inner, routed_epoch);
                                let wait = backoff(&inner, attempt);
                                let inner2 = Rc::clone(&inner);
                                inner.sim.schedule_in(wait, move || {
                                    scan_leg(
                                        inner2,
                                        cursor2,
                                        end2,
                                        snapshot,
                                        remaining,
                                        state.acc,
                                        attempt + 1,
                                        state.done,
                                    )
                                });
                            }
                        }
                    });
                },
            );
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let state = state_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2, routed_epoch);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            scan_leg(
                inner3,
                cursor,
                end,
                snapshot,
                remaining,
                state.acc,
                attempt + 1,
                state.done,
            )
        });
    });
}

/// Completion step of one served scan leg: absorb the page, then finish
/// — limit filled, table end reached, requested end covered by the
/// region just served, or continuation disabled (legacy single-region
/// truncation) — or issue the next leg at the region's end bound.
fn advance_scan(
    inner: Rc<Inner>,
    end: Option<Bytes>,
    snapshot: Timestamp,
    remaining: usize,
    mut state: ScanState,
    page: crate::server::ScanPage,
) {
    let got = page.cells.len();
    state.acc.extend(page.cells);
    let left = remaining.saturating_sub(got);
    let covered = match (&page.region_end, &end) {
        (None, _) => true,              // the region extends to the table end
        (Some(re), Some(e)) => re >= e, // the requested end is inside the region
        (Some(_), None) => false,       // more table to the right
    };
    if left == 0 || covered || !inner.cfg.cross_region_scans {
        inner.scans_ok.inc();
        (state.done)(state.acc);
        return;
    }
    let next = page.region_end.expect("covered handles None");
    scan_leg(inner, next, end, snapshot, left, state.acc, 0, state.done);
}
