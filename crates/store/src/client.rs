//! The store client (the paper's "HBase client" library): region location
//! caching, request routing, timeouts and unbounded retries.
//!
//! The paper removes the client's retry and timeout limits so that an
//! interrupted flush keeps retrying until the affected region comes back
//! online (§3.2): "we work around this by removing the retry and timeout
//! limits so that the client keeps retrying until it succeeds."
//! [`StoreClient::get`], [`StoreClient::multi_get`] and
//! [`StoreClient::multi_put`] therefore retry forever; their callbacks
//! fire exactly once, on success.

use crate::master::{Master, ServerDirectory};
use crate::memstore::VersionedValue;
use crate::region::RegionMap;
use crate::types::{Mutation, RegionId, Timestamp, WriteSet};
use bytes::Bytes;
use cumulo_sim::metrics::Counter;
use cumulo_sim::{Network, NodeId, Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Store-client tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct StoreClientConfig {
    /// How long to wait for a response before treating the request as
    /// lost (dead or partitioned server).
    pub request_timeout: SimDuration,
    /// Delay before retrying a failed/timed-out request.
    pub retry_backoff: SimDuration,
    /// Cap on the exponential retry backoff.
    pub max_backoff: SimDuration,
}

impl Default for StoreClientConfig {
    fn default() -> Self {
        StoreClientConfig {
            request_timeout: SimDuration::from_millis(60),
            retry_backoff: SimDuration::from_millis(15),
            max_backoff: SimDuration::from_millis(500),
        }
    }
}

struct Inner {
    sim: Sim,
    net: Rc<Network>,
    from: NodeId,
    master: Rc<Master>,
    dir: Rc<ServerDirectory>,
    map: RefCell<RegionMap>,
    cfg: StoreClientConfig,
    refresh_inflight: Cell<bool>,
    retries: Counter,
    gets_ok: Counter,
    puts_ok: Counter,
    multi_get_rpcs: Counter,
    multi_gets_ok: Counter,
}

/// A client-side handle to the distributed store. Cheap to clone.
#[derive(Clone)]
pub struct StoreClient {
    inner: Rc<Inner>,
}

impl fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreClient")
            .field("from", &self.inner.from)
            .field("retries", &self.inner.retries.get())
            .finish()
    }
}

impl StoreClient {
    /// Creates a client on node `from`, seeded with the master's current
    /// region map.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        from: NodeId,
        master: &Rc<Master>,
        dir: &Rc<ServerDirectory>,
        cfg: StoreClientConfig,
    ) -> StoreClient {
        StoreClient {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                net: Rc::clone(net),
                from,
                master: Rc::clone(master),
                dir: Rc::clone(dir),
                map: RefCell::new(master.snapshot_map()),
                cfg,
                refresh_inflight: Cell::new(false),
                retries: Counter::new(),
                gets_ok: Counter::new(),
                puts_ok: Counter::new(),
                multi_get_rpcs: Counter::new(),
                multi_gets_ok: Counter::new(),
            }),
        }
    }

    /// The node requests are issued from.
    pub fn from_node(&self) -> NodeId {
        self.inner.from
    }

    /// Reads the newest version of `(row, column)` visible at `snapshot`.
    /// Retries (with location refresh) until it succeeds; `done` fires
    /// exactly once.
    pub fn get(
        &self,
        row: Bytes,
        column: Bytes,
        snapshot: Timestamp,
        done: impl FnOnce(Option<VersionedValue>) + 'static,
    ) {
        get_attempt(
            Rc::clone(&self.inner),
            row,
            column,
            snapshot,
            0,
            Box::new(done),
        );
    }

    /// Flushes one transaction's mutations for one region to its hosting
    /// server, retrying forever (paper §3.2). `floor` piggybacks the
    /// failed server's persisted threshold during server-recovery replay;
    /// `replay` write-sets may target regions still under recovery.
    pub fn multi_put(
        &self,
        region: RegionId,
        ts: Timestamp,
        mutations: Vec<Mutation>,
        floor: Option<Timestamp>,
        replay: bool,
        done: impl FnOnce() + 'static,
    ) {
        put_attempt(
            Rc::clone(&self.inner),
            region,
            ts,
            mutations,
            floor,
            replay,
            0,
            Box::new(done),
        );
    }

    /// Batched point read: fetches the newest version of every
    /// `(row, column)` in `cells` visible at `snapshot`, issuing **one
    /// RPC per region** (cells are grouped by the cached region map,
    /// mirroring [`StoreClient::group_write_set`] on the write path).
    /// Results are returned in input order; each entry is exactly what
    /// [`StoreClient::get`] would have returned for that cell. Groups
    /// retry independently (with location refresh and re-grouping after
    /// an online split) until every cell is served; `done` fires exactly
    /// once, on success of the whole batch.
    pub fn multi_get(
        &self,
        cells: Vec<(Bytes, Bytes)>,
        snapshot: Timestamp,
        done: impl FnOnce(Vec<Option<VersionedValue>>) + 'static,
    ) {
        let n = cells.len();
        if n == 0 {
            let sim = self.inner.sim.clone();
            sim.schedule_in(SimDuration::ZERO, move || done(Vec::new()));
            return;
        }
        let ctx = Rc::new(MultiGetCtx {
            results: RefCell::new(vec![None; n]),
            remaining: Cell::new(n),
            done: RefCell::new(Some(Box::new(done))),
        });
        let groups: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = {
            let map = self.inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = BTreeMap::new();
            for (i, (row, column)) in cells.into_iter().enumerate() {
                g.entry(map.region_for(&row))
                    .or_default()
                    .push((i, row, column));
            }
            g
        };
        for (region, group) in groups {
            multi_get_attempt(
                Rc::clone(&self.inner),
                region,
                group,
                snapshot,
                0,
                Rc::clone(&ctx),
            );
        }
    }

    /// Scans `[start, end)` at `snapshot` within the region containing
    /// `start`, returning up to `limit` cells. Retries until served.
    pub fn scan(
        &self,
        start: Bytes,
        end: Option<Bytes>,
        snapshot: Timestamp,
        limit: usize,
        done: impl FnOnce(Vec<(Bytes, Bytes, VersionedValue)>) + 'static,
    ) {
        scan_attempt(
            Rc::clone(&self.inner),
            start,
            end,
            snapshot,
            limit,
            0,
            Box::new(done),
        );
    }

    /// Splits a write-set by destination region using the cached map.
    /// Boundaries can change under us (online splits), but a stale
    /// grouping self-heals: the server answers `WrongRegion` for a
    /// split-away region id and [`StoreClient::multi_put`] re-groups by
    /// the refreshed map before retrying.
    pub fn group_write_set(&self, ws: &WriteSet) -> BTreeMap<RegionId, Vec<Mutation>> {
        let map = self.inner.map.borrow();
        let mut out: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
        for m in &ws.mutations {
            out.entry(map.region_for(&m.row))
                .or_default()
                .push(m.clone());
        }
        out
    }

    /// The region containing `row` (static boundary lookup).
    pub fn region_for(&self, row: &[u8]) -> RegionId {
        self.inner.map.borrow().region_for(row)
    }

    /// Re-seeds the cached region map directly from the master (harness
    /// wiring for clients constructed before the table was bootstrapped;
    /// steady-state refreshes go through the network).
    pub fn reseed_region_map(&self) {
        *self.inner.map.borrow_mut() = self.inner.master.snapshot_map();
    }

    /// Total request retries performed (timeouts + not-serving).
    pub fn retry_count(&self) -> u64 {
        self.inner.retries.get()
    }

    /// Successful gets.
    pub fn gets_ok(&self) -> u64 {
        self.inner.gets_ok.get()
    }

    /// Batched-read RPCs issued to region servers (one per region per
    /// [`StoreClient::multi_get`] in the failure-free case; retries and
    /// post-split re-groups add more). The acceptance counter for "N
    /// cells spanning R regions cost exactly R round trips".
    pub fn multi_get_rpcs(&self) -> u64 {
        self.inner.multi_get_rpcs.get()
    }

    /// Per-region batched-read RPCs answered successfully.
    pub fn multi_gets_ok(&self) -> u64 {
        self.inner.multi_gets_ok.get()
    }

    /// Acknowledged multi-puts.
    pub fn puts_ok(&self) -> u64 {
        self.inner.puts_ok.get()
    }
}

fn backoff(inner: &Inner, attempt: u32) -> SimDuration {
    let factor = 1u64 << attempt.min(5);
    let d = inner.cfg.retry_backoff * factor;
    let d = d.min(inner.cfg.max_backoff);
    inner.sim.jitter(d, 0.3)
}

/// Refreshes the cached region map from the master (debounced).
fn refresh_map(inner: &Rc<Inner>) {
    if inner.refresh_inflight.get() {
        return;
    }
    inner.refresh_inflight.set(true);
    let master = Rc::clone(&inner.master);
    let net = Rc::clone(&inner.net);
    let from = inner.from;
    let inner2 = Rc::clone(inner);
    inner.net.send(from, master.node(), 64, move || {
        let snapshot = master.snapshot_map();
        let size = 64 + snapshot.assignments().len() * 16;
        net.send(master.node(), from, size, move || {
            *inner2.map.borrow_mut() = snapshot;
            inner2.refresh_inflight.set(false);
        });
    });
}

fn get_attempt(
    inner: Rc<Inner>,
    row: Bytes,
    column: Bytes,
    snapshot: Timestamp,
    attempt: u32,
    done: Box<dyn FnOnce(Option<VersionedValue>)>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    let (region, server) = inner.map.borrow().locate(&row);
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            get_attempt(inner2, row, column, snapshot, attempt + 1, done)
        });
        return;
    };
    let _ = region;
    let settled = Rc::new(Cell::new(false));
    let done_cell: Rc<RefCell<Option<Box<dyn FnOnce(Option<VersionedValue>)>>>> =
        Rc::new(RefCell::new(Some(done)));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let done_cell = Rc::clone(&done_cell);
        let (row2, col2) = (row.clone(), column.clone());
        inner.net.clone().send(
            from,
            server_node,
            64 + row.len() + column.len(),
            move || {
                let server2 = Rc::clone(&server);
                let net_back = Rc::clone(&net_back);
                server2.handle_get(row2.clone(), col2.clone(), snapshot, move |result| {
                    net_back.send(server_node, from, 96, move || {
                        if settled.get() {
                            return;
                        }
                        settled.set(true);
                        let done = done_cell.borrow_mut().take().expect("settled guards");
                        match result {
                            Ok(v) => {
                                inner.gets_ok.inc();
                                done(v);
                            }
                            Err(_) => {
                                // NotServing / unavailable: refresh and retry.
                                inner.retries.inc();
                                refresh_map(&inner);
                                let wait = backoff(&inner, attempt);
                                let inner2 = Rc::clone(&inner);
                                inner.sim.schedule_in(wait, move || {
                                    get_attempt(inner2, row2, col2, snapshot, attempt + 1, done)
                                });
                            }
                        }
                    });
                });
            },
        );
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let done = done_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            get_attempt(inner3, row, column, snapshot, attempt + 1, done)
        });
    });
}

#[allow(clippy::too_many_arguments)]
fn put_attempt(
    inner: Rc<Inner>,
    region: RegionId,
    ts: Timestamp,
    mutations: Vec<Mutation>,
    floor: Option<Timestamp>,
    replay: bool,
    attempt: u32,
    done: Box<dyn FnOnce()>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    // The addressed region id may have been split away since the batch
    // was grouped (the server answers `WrongRegion` and a map refresh
    // landed): re-group the mutations by the current boundaries and fan
    // the batch out to the daughters, completing `done` once all parts
    // are acknowledged. Mutation replay stays idempotent (same commit
    // timestamp), so a partial earlier delivery is harmless.
    let must_regroup = {
        let map = inner.map.borrow();
        // An empty map just means the client pre-dates bootstrap; the
        // ordinary refresh-and-retry path below handles that.
        !map.regions().is_empty() && map.descriptor(region).is_none()
    };
    if must_regroup {
        let groups: BTreeMap<RegionId, Vec<Mutation>> = {
            let map = inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
            for m in mutations {
                g.entry(map.region_for(&m.row)).or_default().push(m);
            }
            g
        };
        if groups.is_empty() {
            done();
            return;
        }
        let pending = Rc::new(Cell::new(groups.len()));
        let done_cell: Rc<RefCell<Option<Box<dyn FnOnce()>>>> = Rc::new(RefCell::new(Some(done)));
        for (sub_region, muts) in groups {
            let pending2 = Rc::clone(&pending);
            let done_cell2 = Rc::clone(&done_cell);
            put_attempt(
                Rc::clone(&inner),
                sub_region,
                ts,
                muts,
                floor,
                replay,
                attempt,
                Box::new(move || {
                    pending2.set(pending2.get() - 1);
                    if pending2.get() == 0 {
                        let done = done_cell2.borrow_mut().take().expect("single completion");
                        done();
                    }
                }),
            );
        }
        return;
    }
    let server = inner
        .map
        .borrow()
        .server_for(region)
        .and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            put_attempt(
                inner2,
                region,
                ts,
                mutations,
                floor,
                replay,
                attempt + 1,
                done,
            )
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let done_cell: Rc<RefCell<Option<Box<dyn FnOnce()>>>> = Rc::new(RefCell::new(Some(done)));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    let size = 64 + mutations.iter().map(Mutation::wire_size).sum::<usize>();
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let done_cell = Rc::clone(&done_cell);
        let mutations2 = mutations.clone();
        inner.net.clone().send(from, server_node, size, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            let mutations3 = mutations2.clone();
            server2.handle_multi_put(region, ts, mutations2, floor, replay, move |result| {
                net_back.send(server_node, from, 48, move || {
                    if settled.get() {
                        return;
                    }
                    settled.set(true);
                    let done = done_cell.borrow_mut().take().expect("settled guards");
                    match result {
                        Ok(()) => {
                            inner.puts_ok.inc();
                            done();
                        }
                        Err(_) => {
                            inner.retries.inc();
                            refresh_map(&inner);
                            let wait = backoff(&inner, attempt);
                            let inner2 = Rc::clone(&inner);
                            inner.sim.schedule_in(wait, move || {
                                put_attempt(
                                    inner2,
                                    region,
                                    ts,
                                    mutations3,
                                    floor,
                                    replay,
                                    attempt + 1,
                                    done,
                                )
                            });
                        }
                    }
                });
            });
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let done = done_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            put_attempt(
                inner3,
                region,
                ts,
                mutations,
                floor,
                replay,
                attempt + 1,
                done,
            )
        });
    });
}

/// Shared completion state of one [`StoreClient::multi_get`]: per-region
/// groups fill `results` independently; the last cell served fires
/// `done`.
struct MultiGetCtx {
    results: RefCell<Vec<Option<VersionedValue>>>,
    remaining: Cell<usize>,
    done: RefCell<Option<Box<dyn FnOnce(Vec<Option<VersionedValue>>)>>>,
}

fn multi_get_attempt(
    inner: Rc<Inner>,
    region: RegionId,
    group: Vec<(usize, Bytes, Bytes)>,
    snapshot: Timestamp,
    attempt: u32,
    ctx: Rc<MultiGetCtx>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    // The addressed region id may have been split away since the batch
    // was grouped: re-group this group's cells by the current boundaries
    // and fan out to the daughters (same self-healing as `put_attempt`).
    let must_regroup = {
        let map = inner.map.borrow();
        !map.regions().is_empty() && map.descriptor(region).is_none()
    };
    if must_regroup {
        let groups: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = {
            let map = inner.map.borrow();
            let mut g: BTreeMap<RegionId, Vec<(usize, Bytes, Bytes)>> = BTreeMap::new();
            for (i, row, column) in group {
                g.entry(map.region_for(&row))
                    .or_default()
                    .push((i, row, column));
            }
            g
        };
        for (sub_region, sub) in groups {
            multi_get_attempt(
                Rc::clone(&inner),
                sub_region,
                sub,
                snapshot,
                attempt,
                Rc::clone(&ctx),
            );
        }
        return;
    }
    let server = inner
        .map
        .borrow()
        .server_for(region)
        .and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            multi_get_attempt(inner2, region, group, snapshot, attempt + 1, ctx)
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    let size = 64
        + group
            .iter()
            .map(|(_, r, c)| 8 + r.len() + c.len())
            .sum::<usize>();
    inner.multi_get_rpcs.inc();
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let ctx = Rc::clone(&ctx);
        let group2 = group.clone();
        inner.net.clone().send(from, server_node, size, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            let cells: Vec<(Bytes, Bytes)> = group2
                .iter()
                .map(|(_, r, c)| (r.clone(), c.clone()))
                .collect();
            let group3 = group2.clone();
            server2.handle_multi_get(region, cells, snapshot, move |result| {
                let size = 48 + result.as_ref().map(|v| v.len() * 64).unwrap_or(0);
                net_back.send(server_node, from, size, move || {
                    if settled.get() {
                        return;
                    }
                    settled.set(true);
                    match result {
                        Ok(values) => {
                            inner.multi_gets_ok.inc();
                            complete_multi_get_group(&ctx, &group3, values);
                        }
                        Err(_) => {
                            inner.retries.inc();
                            refresh_map(&inner);
                            let wait = backoff(&inner, attempt);
                            let inner2 = Rc::clone(&inner);
                            inner.sim.schedule_in(wait, move || {
                                multi_get_attempt(
                                    inner2,
                                    region,
                                    group3,
                                    snapshot,
                                    attempt + 1,
                                    ctx,
                                )
                            });
                        }
                    }
                });
            });
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        inner2.retries.inc();
        refresh_map(&inner2);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            multi_get_attempt(inner3, region, group, snapshot, attempt + 1, ctx)
        });
    });
}

/// Writes one served group's values into the batch result (input order)
/// and fires the batch completion when the last cell lands.
fn complete_multi_get_group(
    ctx: &Rc<MultiGetCtx>,
    group: &[(usize, Bytes, Bytes)],
    values: Vec<Option<VersionedValue>>,
) {
    debug_assert_eq!(group.len(), values.len());
    {
        let mut results = ctx.results.borrow_mut();
        for ((i, _, _), vv) in group.iter().zip(values) {
            results[*i] = vv;
        }
    }
    ctx.remaining.set(ctx.remaining.get() - group.len());
    if ctx.remaining.get() == 0 {
        let done = ctx.done.borrow_mut().take().expect("single completion");
        done(std::mem::take(&mut *ctx.results.borrow_mut()));
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_attempt(
    inner: Rc<Inner>,
    start: Bytes,
    end: Option<Bytes>,
    snapshot: Timestamp,
    limit: usize,
    attempt: u32,
    done: Box<dyn FnOnce(Vec<(Bytes, Bytes, VersionedValue)>)>,
) {
    if !inner.net.is_alive(inner.from) {
        return; // the client process is dead; drop the retry chain
    }
    let (_, server) = inner.map.borrow().locate(&start);
    let server = server.and_then(|s| inner.dir.get(s));
    let Some(server) = server else {
        refresh_map(&inner);
        let wait = backoff(&inner, attempt);
        let inner2 = Rc::clone(&inner);
        inner.retries.inc();
        inner.sim.schedule_in(wait, move || {
            scan_attempt(inner2, start, end, snapshot, limit, attempt + 1, done)
        });
        return;
    };
    let settled = Rc::new(Cell::new(false));
    let done_cell: Rc<RefCell<Option<Box<dyn FnOnce(Vec<(Bytes, Bytes, VersionedValue)>)>>>> =
        Rc::new(RefCell::new(Some(done)));
    let server_node = server.node();
    let from = inner.from;
    let net_back = Rc::clone(&inner.net);
    {
        let inner = Rc::clone(&inner);
        let settled = Rc::clone(&settled);
        let done_cell = Rc::clone(&done_cell);
        let (start2, end2) = (start.clone(), end.clone());
        inner.net.clone().send(from, server_node, 96, move || {
            let net_back = Rc::clone(&net_back);
            let server2 = Rc::clone(&server);
            server2.handle_scan(
                start2.clone(),
                end2.clone(),
                snapshot,
                limit,
                move |result| {
                    let size = 64 + result.as_ref().map(|v| v.len() * 64).unwrap_or(0);
                    net_back.send(server_node, from, size, move || {
                        if settled.get() {
                            return;
                        }
                        settled.set(true);
                        let done = done_cell.borrow_mut().take().expect("settled guards");
                        match result {
                            Ok(v) => done(v),
                            Err(_) => {
                                inner.retries.inc();
                                refresh_map(&inner);
                                let wait = backoff(&inner, attempt);
                                let inner2 = Rc::clone(&inner);
                                inner.sim.schedule_in(wait, move || {
                                    scan_attempt(
                                        inner2,
                                        start2,
                                        end2,
                                        snapshot,
                                        limit,
                                        attempt + 1,
                                        done,
                                    )
                                });
                            }
                        }
                    });
                },
            );
        });
    }
    let inner2 = Rc::clone(&inner);
    inner.sim.schedule_in(inner.cfg.request_timeout, move || {
        if settled.get() {
            return;
        }
        settled.set(true);
        let done = done_cell.borrow_mut().take().expect("settled guards");
        inner2.retries.inc();
        refresh_map(&inner2);
        let wait = backoff(&inner2, attempt);
        let inner3 = Rc::clone(&inner2);
        inner2.sim.schedule_in(wait, move || {
            scan_attempt(inner3, start, end, snapshot, limit, attempt + 1, done)
        });
    });
}
