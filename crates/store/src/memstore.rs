//! The in-memory, MVCC-versioned write buffer of a region.
//!
//! Every update a region server receives is applied here first (after the
//! WAL append) and served from here until a flush writes it to a store
//! file. Versions are commit timestamps, so applying the same write-set
//! twice — which recovery replay can do — is idempotent.

use crate::types::{MutationKind, Timestamp};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Key of one versioned cell: (row, column, timestamp).
///
/// Ordered by row, then column, then *descending* timestamp so that a range
/// scan starting at `(row, col, ts)` finds the newest version ≤ `ts` first.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct VersionKey {
    row: Bytes,
    column: Bytes,
    /// Stored inverted (`!ts`) so larger timestamps sort first.
    inv_ts: u64,
}

impl VersionKey {
    fn new(row: Bytes, column: Bytes, ts: Timestamp) -> VersionKey {
        VersionKey {
            row,
            column,
            inv_ts: !ts.0,
        }
    }

    fn ts(&self) -> Timestamp {
        Timestamp(!self.inv_ts)
    }
}

/// One versioned cell value as returned by reads: the version that wrote
/// it and the value (`None` for a delete tombstone).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionedValue {
    /// The commit timestamp that wrote this version.
    pub ts: Timestamp,
    /// The value, or `None` if this version is a tombstone.
    pub value: Option<Bytes>,
}

/// An in-memory multi-version cell store.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use cumulo_store::{MemStore, Timestamp};
///
/// let mut ms = MemStore::new();
/// ms.apply(Bytes::from_static(b"row"), Bytes::from_static(b"col"), Timestamp(10), Some(Bytes::from_static(b"v1")));
/// ms.apply(Bytes::from_static(b"row"), Bytes::from_static(b"col"), Timestamp(20), Some(Bytes::from_static(b"v2")));
/// // A snapshot at ts 15 sees the version written at 10.
/// let seen = ms.get(b"row", b"col", Timestamp(15)).unwrap();
/// assert_eq!(seen.ts, Timestamp(10));
/// assert_eq!(seen.value.as_deref(), Some(&b"v1"[..]));
/// ```
#[derive(Default)]
pub struct MemStore {
    cells: BTreeMap<VersionKey, Option<Bytes>>,
    approx_bytes: usize,
}

impl fmt::Debug for MemStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemStore")
            .field("versions", &self.cells.len())
            .field("approx_bytes", &self.approx_bytes)
            .finish()
    }
}

impl MemStore {
    /// Creates an empty memstore.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Applies one versioned write (idempotent: re-applying the same
    /// (cell, ts) pair replaces the identical entry).
    pub fn apply(&mut self, row: Bytes, column: Bytes, ts: Timestamp, value: Option<Bytes>) {
        let size = row.len() + column.len() + value.as_ref().map(Bytes::len).unwrap_or(0) + 24;
        let prev = self.cells.insert(VersionKey::new(row, column, ts), value);
        if prev.is_none() {
            self.approx_bytes += size;
        }
    }

    /// Applies a [`MutationKind`] at the given version.
    pub fn apply_mutation(
        &mut self,
        row: Bytes,
        column: Bytes,
        ts: Timestamp,
        kind: &MutationKind,
    ) {
        let value = match kind {
            MutationKind::Put(v) => Some(v.clone()),
            MutationKind::Delete => None,
        };
        self.apply(row, column, ts, value);
    }

    /// The newest version of `(row, column)` with timestamp ≤
    /// `snapshot`, if any (including tombstones: callers distinguish
    /// "no entry" from "deleted").
    pub fn get(&self, row: &[u8], column: &[u8], snapshot: Timestamp) -> Option<VersionedValue> {
        let start = VersionKey::new(
            Bytes::copy_from_slice(row),
            Bytes::copy_from_slice(column),
            snapshot,
        );
        let (key, value) = self.cells.range(start..).next()?;
        if key.row == row && key.column == column {
            Some(VersionedValue {
                ts: key.ts(),
                value: value.clone(),
            })
        } else {
            None
        }
    }

    /// Iterates all versions in (row, column, descending ts) order, as
    /// `(row, column, ts, value)` — the flush path and scans use this.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Bytes, Timestamp, &Option<Bytes>)> + '_ {
        self.cells
            .iter()
            .map(|(k, v)| (&k.row, &k.column, k.ts(), v))
    }

    /// Latest visible value per cell for rows in `[start, end)` at
    /// `snapshot` (`end` exclusive, `None` = unbounded), excluding
    /// tombstoned cells. Rows come back in key order. This is one
    /// region's in-memory slice of a scan: the region server merges it
    /// with the flushing snapshot and store files, and the store client
    /// stitches consecutive regions' pages into the full cross-region
    /// result.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        snapshot: Timestamp,
    ) -> Vec<(Bytes, Bytes, VersionedValue)> {
        let mut out: Vec<(Bytes, Bytes, VersionedValue)> = Vec::new();
        for (row, col, ts, value) in self.iter() {
            if ts > snapshot {
                continue;
            }
            if &row[..] < start {
                continue;
            }
            if let Some(end) = end {
                if &row[..] >= end {
                    continue;
                }
            }
            // Entries are sorted newest-first per cell: keep only the first
            // version seen for each (row, col).
            if let Some((lr, lc, _)) = out.last() {
                if lr == row && lc == col {
                    continue;
                }
            }
            out.push((
                row.clone(),
                col.clone(),
                VersionedValue {
                    ts,
                    value: value.clone(),
                },
            ));
        }
        out
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no versions are stored.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Approximate heap footprint, used for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Removes everything (after a successful flush).
    pub fn clear(&mut self) {
        self.cells.clear();
        self.approx_bytes = 0;
    }

    /// Moves the current contents out (flush snapshot), leaving the
    /// memstore empty for new writes.
    pub fn take(&mut self) -> MemStore {
        let cells = std::mem::take(&mut self.cells);
        let bytes = std::mem::replace(&mut self.approx_bytes, 0);
        MemStore {
            cells,
            approx_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn snapshot_reads_see_correct_version() {
        let mut ms = MemStore::new();
        ms.apply(b("r"), b("c"), Timestamp(10), Some(b("v10")));
        ms.apply(b("r"), b("c"), Timestamp(20), Some(b("v20")));
        ms.apply(b("r"), b("c"), Timestamp(30), Some(b("v30")));
        assert_eq!(ms.get(b"r", b"c", Timestamp(5)), None);
        assert_eq!(
            ms.get(b"r", b"c", Timestamp(10)).unwrap().value,
            Some(b("v10"))
        );
        assert_eq!(
            ms.get(b"r", b"c", Timestamp(25)).unwrap().value,
            Some(b("v20"))
        );
        assert_eq!(
            ms.get(b"r", b"c", Timestamp::MAX).unwrap().value,
            Some(b("v30"))
        );
    }

    #[test]
    fn tombstones_are_returned_distinctly() {
        let mut ms = MemStore::new();
        ms.apply(b("r"), b("c"), Timestamp(10), Some(b("v")));
        ms.apply_mutation(b("r"), b("c"), Timestamp(20), &MutationKind::Delete);
        let vv = ms.get(b"r", b"c", Timestamp(25)).unwrap();
        assert_eq!(vv.ts, Timestamp(20));
        assert_eq!(vv.value, None);
        // Distinct from a cell that never existed:
        assert_eq!(ms.get(b"r", b"x", Timestamp(25)), None);
    }

    #[test]
    fn idempotent_replay() {
        let mut ms = MemStore::new();
        ms.apply(b("r"), b("c"), Timestamp(10), Some(b("v")));
        let size1 = ms.approx_bytes();
        let len1 = ms.len();
        ms.apply(b("r"), b("c"), Timestamp(10), Some(b("v"))); // replay
        assert_eq!(ms.len(), len1);
        assert_eq!(ms.approx_bytes(), size1);
        assert_eq!(
            ms.get(b"r", b"c", Timestamp(10)).unwrap().value,
            Some(b("v"))
        );
    }

    #[test]
    fn cells_do_not_interfere() {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c1"), Timestamp(10), Some(b("x")));
        ms.apply(b("a"), b("c2"), Timestamp(11), Some(b("y")));
        ms.apply(b("b"), b("c1"), Timestamp(12), Some(b("z")));
        assert_eq!(
            ms.get(b"a", b"c1", Timestamp::MAX).unwrap().value,
            Some(b("x"))
        );
        assert_eq!(
            ms.get(b"a", b"c2", Timestamp::MAX).unwrap().value,
            Some(b("y"))
        );
        assert_eq!(
            ms.get(b"b", b"c1", Timestamp::MAX).unwrap().value,
            Some(b("z"))
        );
        assert_eq!(ms.get(b"b", b"c2", Timestamp::MAX), None);
    }

    #[test]
    fn iter_is_sorted_newest_first_per_cell() {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c"), Timestamp(1), Some(b("old")));
        ms.apply(b("a"), b("c"), Timestamp(2), Some(b("new")));
        ms.apply(b("b"), b("c"), Timestamp(1), Some(b("b1")));
        let entries: Vec<_> = ms
            .iter()
            .map(|(r, c, ts, _)| (r.clone(), c.clone(), ts))
            .collect();
        assert_eq!(
            entries,
            vec![
                (b("a"), b("c"), Timestamp(2)),
                (b("a"), b("c"), Timestamp(1)),
                (b("b"), b("c"), Timestamp(1)),
            ]
        );
    }

    #[test]
    fn scan_returns_latest_visible_per_cell() {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c"), Timestamp(1), Some(b("a1")));
        ms.apply(b("a"), b("c"), Timestamp(5), Some(b("a5")));
        ms.apply(b("b"), b("c"), Timestamp(2), Some(b("b2")));
        ms.apply(b("c"), b("c"), Timestamp(3), Some(b("c3")));
        let hits = ms.scan(b"a", Some(b"c"), Timestamp(4));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].2.value, Some(b("a1"))); // ts5 invisible at snapshot 4
        assert_eq!(hits[1].2.value, Some(b("b2")));
    }

    #[test]
    fn take_leaves_empty() {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c"), Timestamp(1), Some(b("v")));
        let snap = ms.take();
        assert_eq!(snap.len(), 1);
        assert!(ms.is_empty());
        assert_eq!(ms.approx_bytes(), 0);
        ms.apply(b("b"), b("c"), Timestamp(2), Some(b("w")));
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn approx_bytes_grows_with_data() {
        let mut ms = MemStore::new();
        assert_eq!(ms.approx_bytes(), 0);
        ms.apply(
            b("row"),
            b("col"),
            Timestamp(1),
            Some(Bytes::from(vec![0u8; 1000])),
        );
        assert!(ms.approx_bytes() >= 1000);
        ms.clear();
        assert_eq!(ms.approx_bytes(), 0);
    }
}
