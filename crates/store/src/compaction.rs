//! Background store-file compaction with MVCC garbage collection.
//!
//! Every memstore flush appends another immutable store file to its
//! region, and every read must consult all of them — unbounded *read
//! amplification*. Compaction is the maintenance stage that merges a
//! region's store files back down: a pluggable [`CompactionPolicy`]
//! picks a candidate set and decides where the output goes, a k-way
//! merge rewrites the inputs (as one file, or partitioned at row
//! boundaries into a disjoint run), and versions no reader can observe
//! any more are garbage-collected along the way.
//!
//! ## Policies
//!
//! Two built-in policies trade write amplification against read bound:
//!
//! * [`SizeTieredPolicy`] merges the widest window of similarly-sized
//!   files (each byte is rewritten O(log n) times), but file key ranges
//!   overlap freely, so between merges a point get may probe every file.
//! * [`LeveledPolicy`] keeps flush outputs in an overlapping **L0** tier
//!   and everything below in key-range-disjoint levels whose byte
//!   budgets grow by `level_ratio` per level. A get consults at most one
//!   file per level (plus L0) — the files-consulted bound is ≈ the level
//!   count — at the cost of rewriting overlap into the next level.
//!
//! The policy is selected per cluster via [`CompactionConfig::policy`]
//! and switchable at runtime (`RegionServer::set_compaction_policy`);
//! policies are stateless over [`FileMeta`], so a switch simply changes
//! what the next candidacy check decides.
//!
//! ## Backpressure
//!
//! Background merges compete with foreground requests for the same
//! handler slots. The server's deficit scheduler (see
//! `RegionServer::check_compactions`) defers a due merge while the
//! handlers' windowed utilization is above
//! [`CompactionConfig::utilization_threshold`], accruing one deficit
//! token per deferral; at [`CompactionConfig::max_deferrals`] tokens the
//! merge runs anyway, so read amplification stays bounded under
//! sustained overload. Above the harder
//! [`CompactionConfig::stall_file_limit`] (total files for size-tiered,
//! L0 files for leveled), memstore *flushes* stall — the region trades
//! memstore memory for a bounded file count until compaction catches up.
//!
//! ## MVCC garbage collection
//!
//! Versions are commit timestamps. A version of a cell is *garbage* when
//! it is shadowed by a newer version at or below the **GC watermark** —
//! the oldest snapshot any current or future reader can hold (the
//! transaction manager's oldest pinned snapshot; see
//! `cumulo-txn`'s oracle). The merge keeps, per cell:
//!
//! * every version newer than the watermark (some reader may still need
//!   to see *around* it), and
//! * the newest version at or below the watermark (what every old-enough
//!   snapshot resolves to),
//!
//! and drops the rest. When the compaction covers the region's entire
//! file set (a *major* compaction), a kept tombstone at or below the
//! watermark can itself be dropped — there is nothing left for it to
//! shadow — provided two additional conditions hold:
//!
//! * the caller-supplied guard confirms no older version of the cell
//!   survives outside the inputs (e.g. replayed recovered edits sitting
//!   in the memstore), and
//! * the tombstone is at or below the **purge floor**
//!   ([`GcWatermark::purge_floor`]), the recovery log's truncation
//!   point. Client- and server-recovery replays re-apply write-sets
//!   still present in the recovery log; a version the tombstone shadows
//!   could be re-applied later and, with the tombstone gone, would be
//!   resurrected. Below the truncation point the log no longer holds
//!   such records, so nothing can come back.
//!
//! ## Crash safety
//!
//! The merged file is written to the distributed filesystem under a
//! temporary dot-name inside the region directory and *renamed* into its
//! final name only after the write is fully replicated. A server crash
//! mid-compaction therefore leaves at worst an ignorable `.tmp-` file:
//! region recovery skips temp names, and the input files — which are
//! deleted only after the swap — still cover all data. If the crash lands
//! after the rename but before the inputs are deleted, recovery sees the
//! merged file *and* the inputs; that duplication is read-equivalent
//! because the merged file contains exactly the surviving versions of its
//! inputs.
//!
//! ## Compaction and the read-path service model
//!
//! A point get pays, per region, one `storefile_read_service` term for
//! every store file it *consults* beyond the first. Which files those are
//! is decided by per-file metadata (see `sstable.rs`): key-range pruning
//! excludes files whose min/max row range misses the key for free, and a
//! per-file bloom filter over `(row, column)` pairs excludes most of the
//! rest at a small `filter_probe_service` cost each. Compaction interacts
//! with that model in two ways: it bounds the *file count* (and with it
//! the number of probes a get pays), and its merge output is rebuilt with
//! fresh range and filter metadata via
//! [`StoreFileData::from_sorted_entries`] — dropping the inputs' filters
//! and creating one sized for the surviving entries, which
//! [`CompactionStats::filter_bytes_dropped`] and
//! [`CompactionStats::filter_bytes_created`] make observable. Scans
//! cannot use per-key filters; for them only range pruning and the file
//! count bound apply.

use crate::sstable::{StoreFileData, StoreFileEntry};
use crate::types::{RegionId, Timestamp};
use bytes::Bytes;
use cumulo_sim::metrics::{Counter, Gauge, GaugeVec};
use cumulo_sim::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Marker prefix of in-flight compaction outputs. Files with this
/// basename prefix are skipped by region recovery and may be deleted
/// freely.
pub const TMP_PREFIX: &str = ".tmp-";

/// Whether a store-file path names an in-flight (ignorable) compaction
/// temporary.
pub fn is_tmp_path(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .map(|base| base.starts_with(TMP_PREFIX))
        .unwrap_or(false)
}

/// The in-flight temporary name for a final store-file path: the
/// [`TMP_PREFIX`] is spliced onto the basename, so [`is_tmp_path`]
/// recognizes it and region recovery skips it.
pub fn tmp_name(final_path: &str) -> String {
    match final_path.rfind('/') {
        Some(slash) => format!(
            "{}{}{}",
            &final_path[..slash + 1],
            TMP_PREFIX,
            &final_path[slash + 1..]
        ),
        None => format!("{TMP_PREFIX}{final_path}"),
    }
}

/// The pair of timestamps that bound what MVCC garbage collection may
/// drop (see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GcWatermark {
    /// The oldest snapshot any current or future reader can hold:
    /// versions *shadowed* at or below this may be dropped.
    pub horizon: Timestamp,
    /// The recovery log's truncation point: tombstones may only be
    /// *purged* at or below this, because write-sets above it can still
    /// be re-applied by recovery replays.
    pub purge_floor: Timestamp,
}

impl GcWatermark {
    /// A watermark that garbage-collects nothing (the safe default when
    /// no transactional tier is wired in).
    pub const ZERO: GcWatermark = GcWatermark {
        horizon: Timestamp::ZERO,
        purge_floor: Timestamp::ZERO,
    };

    /// A watermark using one timestamp for both bounds (convenient in
    /// tests and in deployments without recovery replay).
    pub fn at(ts: Timestamp) -> GcWatermark {
        GcWatermark {
            horizon: ts,
            purge_floor: ts,
        }
    }
}

/// Which built-in [`CompactionPolicy`] a server runs. Selectable per
/// cluster via config and at runtime via
/// [`crate::RegionServer::set_compaction_policy`] (an A/B switch like
/// `set_bloom_filters`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompactionPolicyKind {
    /// Merge similarly-sized files wherever they are: amortized O(log n)
    /// rewrites per byte, but file key ranges overlap freely, so a point
    /// get may have to probe every file.
    SizeTiered,
    /// LSM levels: overlapping flush outputs pool in L0; levels ≥ 1 hold
    /// key-range-partitioned (disjoint) files with size-ratio-bounded
    /// totals, so a get consults at most one file per level plus L0.
    Leveled,
}

/// Compaction tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct CompactionConfig {
    /// Master switch.
    pub enabled: bool,
    /// Which candidate-selection/output-placement policy runs.
    pub policy: CompactionPolicyKind,
    /// Store-file count at which a region becomes a size-tiered
    /// compaction candidate.
    pub min_files: usize,
    /// Leveled policy: the L0 file count that triggers the L0 → L1 merge.
    /// Decoupled from the size-tiered `min_files` so tuning one policy's
    /// candidacy floor does not silently retune the other's.
    pub l0_trigger_files: usize,
    /// Most files merged by one size-tiered compaction (the leveled L0
    /// merge ignores this: L0 files overlap and must merge together).
    pub max_files: usize,
    /// Size-tier tolerance: files within this ratio of each other count
    /// as one tier and are merged together preferentially.
    pub tier_ratio: f64,
    /// How often regions are checked for compaction candidacy.
    pub check_interval: SimDuration,
    /// Handler CPU charged per merged version — compaction competes with
    /// foreground requests for the same handler slots.
    pub merge_service_per_entry: SimDuration,
    /// Leveled policy: byte budget of L1; level `L ≥ 1` holds
    /// `level_base_bytes × level_ratio^(L-1)` bytes before it overflows
    /// into `L+1`.
    pub level_base_bytes: usize,
    /// Leveled policy: size ratio between consecutive levels.
    pub level_ratio: f64,
    /// Leveled policy: target size of one output file on levels ≥ 1 (the
    /// merge partitions its output at row boundaries near this size, so a
    /// level is a run of small disjoint files, not one monolith).
    pub level_file_bytes: usize,
    /// Backpressure master switch: when on, the deficit scheduler defers
    /// background merges while foreground handler utilization is above
    /// [`CompactionConfig::utilization_threshold`], and flushes stall at
    /// the [`CompactionConfig::stall_file_limit`].
    pub backpressure: bool,
    /// Foreground handler utilization (over the last check interval)
    /// above which a due merge is deferred instead of submitted.
    pub utilization_threshold: f64,
    /// A deferred merge accrues one deficit token per check tick; at this
    /// many tokens it runs regardless of utilization (bounds starvation —
    /// read amplification must not grow without bound just because the
    /// server is busy).
    pub max_deferrals: u32,
    /// Hard limit on the store-file count (size-tiered) or the L0 file
    /// count (leveled) at which memstore flushes *stall*: the flush is
    /// skipped until compaction drains the backlog, trading memstore
    /// memory for bounded read amplification.
    pub stall_file_limit: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            enabled: true,
            policy: CompactionPolicyKind::SizeTiered,
            min_files: 4,
            l0_trigger_files: 4,
            max_files: 10,
            tier_ratio: 3.0,
            check_interval: SimDuration::from_secs(2),
            merge_service_per_entry: SimDuration::from_nanos(150),
            level_base_bytes: 4 << 20,
            level_ratio: 8.0,
            level_file_bytes: 1 << 20,
            backpressure: true,
            utilization_threshold: 0.85,
            max_deferrals: 5,
            stall_file_limit: 20,
        }
    }
}

/// Shared observability for a server's compactions (all handles clone
/// cheaply and share state, like the other `cumulo_sim::metrics` types).
#[derive(Clone, Default, Debug)]
pub struct CompactionStats {
    /// Compactions started (a crash can leave this ahead of `completed`).
    pub started: Counter,
    /// Compactions that swapped their merged file in.
    pub completed: Counter,
    /// Bytes written into merged output files.
    pub bytes_rewritten: Counter,
    /// MVCC versions garbage-collected (shadowed versions, purged
    /// tombstones and cross-file duplicates).
    pub versions_dropped: Counter,
    /// Input files retired (removed from region file lists).
    pub files_retired: Counter,
    /// Obsolete-file deletions confirmed by the filesystem.
    pub deletes_confirmed: Counter,
    /// Bytes of bloom-filter metadata retired with the input files —
    /// together with `filter_bytes_created`, the filter overhead a
    /// compaction churns.
    pub filter_bytes_dropped: Counter,
    /// Bytes of bloom-filter metadata built for merged output files.
    pub filter_bytes_created: Counter,
    /// Current worst-case read amplification: the largest store-file
    /// count across the server's hosted regions.
    pub read_amplification: Gauge,
    /// Due merges the backpressure scheduler deferred because foreground
    /// handler utilization was above the threshold.
    pub deferred: Counter,
    /// Deferred merges forced through after `max_deferrals` ticks (the
    /// deficit bank filled up).
    pub forced: Counter,
    /// Memstore flushes stalled by the file-count hard limit.
    pub flush_stalls: Counter,
    /// Simulated nanoseconds flush work spent stalled (one check interval
    /// per stalled flush attempt).
    pub stall_ns: Counter,
    /// Store-file count per LSM level across hosted regions (slot =
    /// level; size-tiered keeps everything in slot 0).
    pub level_files: GaugeVec,
    /// Store-file bytes per LSM level across hosted regions.
    pub level_bytes: GaugeVec,
}

/// Per-file metadata a [`CompactionPolicy`] sees when picking candidates:
/// everything it may select on, nothing it could mutate.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// The file's DFS path (identifies it across the pick → merge gap).
    pub path: String,
    /// Approximate on-disk size.
    pub bytes: usize,
    /// Stored versions (drives the merge's handler-CPU charge).
    pub entries: usize,
    /// LSM level the file currently sits on (flush outputs start at 0;
    /// the size-tiered policy leaves everything there).
    pub level: u32,
    /// Min/max row key, `None` for an empty file — the leveled policy
    /// selects overlapping next-level inputs by range.
    pub key_range: Option<(Bytes, Bytes)>,
}

impl FileMeta {
    /// Whether this file's row range intersects `other`'s (empty files
    /// overlap nothing).
    pub fn overlaps(&self, other: &FileMeta) -> bool {
        match (&self.key_range, &other.key_range) {
            (Some((amin, amax)), Some((bmin, bmax))) => amin <= bmax && bmin <= amax,
            _ => false,
        }
    }
}

/// One planned compaction: which files to merge and where the output
/// goes. Produced by a [`CompactionPolicy`], executed by the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionJob {
    /// Indices into the [`FileMeta`] slice handed to
    /// [`CompactionPolicy::pick`].
    pub inputs: Vec<usize>,
    /// Level the merged output lands on.
    pub output_level: u32,
    /// When `Some`, the merge output is partitioned at row boundaries
    /// into files of roughly this many bytes (the leveled policy's
    /// disjoint runs); `None` produces a single output file.
    pub max_output_bytes: Option<usize>,
}

/// The cheap file-count summary the flush-stall check runs on. The
/// flush path evaluates this every check tick, so it deliberately does
/// not carry per-file metadata (extend the struct if a future policy
/// needs more signal — don't switch to `FileMeta` slices).
#[derive(Copy, Clone, Debug, Default)]
pub struct StallSignal {
    /// Store files backing the region (all levels).
    pub total_files: usize,
    /// Files currently on level 0.
    pub l0_files: usize,
}

/// A compaction policy: candidate selection plus output placement.
///
/// The server asks the policy per region (a) whether a merge is due and
/// what it should cover ([`CompactionPolicy::pick`]) and (b) whether the
/// file backlog is deep enough that memstore flushes must stall
/// ([`CompactionPolicy::flush_should_stall`]). Policies are stateless:
/// everything they need arrives in the [`FileMeta`] slice, so a runtime
/// policy switch is safe mid-flight — the next pick simply sees the
/// current file stack.
pub trait CompactionPolicy {
    /// Stable machine-readable name (bench CSV column values).
    fn name(&self) -> &'static str;

    /// The corresponding config enum value.
    fn kind(&self) -> CompactionPolicyKind;

    /// Picks the next merge for one region's file set, or `None` when no
    /// merge is due. `files` arrives in the region's (deterministic)
    /// store-file order; returned indices refer into it.
    fn pick(&self, files: &[FileMeta], cfg: &CompactionConfig) -> Option<CompactionJob>;

    /// Whether the backlog is at the hard limit where flushes must stall
    /// (only consulted while backpressure is enabled).
    fn flush_should_stall(&self, sig: StallSignal, cfg: &CompactionConfig) -> bool;
}

/// The built-in policy instance for a config value. The instances are
/// stateless, so one `Rc` per server is plenty.
pub fn policy_for(kind: CompactionPolicyKind) -> Rc<dyn CompactionPolicy> {
    match kind {
        CompactionPolicyKind::SizeTiered => Rc::new(SizeTieredPolicy),
        CompactionPolicyKind::Leveled => Rc::new(LeveledPolicy),
    }
}

/// The original policy: merge the widest window of similarly-sized files
/// (see [`pick_candidates`]). Outputs land back on level 0 as one file;
/// flushes stall when the *total* file count reaches the hard limit.
#[derive(Copy, Clone, Debug, Default)]
pub struct SizeTieredPolicy;

impl CompactionPolicy for SizeTieredPolicy {
    fn name(&self) -> &'static str {
        "size_tiered"
    }

    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::SizeTiered
    }

    fn pick(&self, files: &[FileMeta], cfg: &CompactionConfig) -> Option<CompactionJob> {
        let sizes: Vec<usize> = files.iter().map(|f| f.bytes).collect();
        pick_candidates(&sizes, cfg).map(|inputs| CompactionJob {
            inputs,
            output_level: 0,
            max_output_bytes: None,
        })
    }

    fn flush_should_stall(&self, sig: StallSignal, cfg: &CompactionConfig) -> bool {
        sig.total_files >= cfg.stall_file_limit
    }
}

/// Leveled compaction (the LevelDB/RocksDB shape).
///
/// * **L0** pools raw flush outputs, whose key ranges overlap freely.
///   Once `min_files` of them accumulate, *all* of L0 merges into L1,
///   together with every L1 file inside the merged span's closure (the
///   output run covers the span, so a same-level file left out of it
///   would end up overlapped).
/// * **Levels ≥ 1** hold key-range-disjoint runs of files of about
///   `level_file_bytes` each, with a byte budget of
///   `level_base_bytes × level_ratio^(L-1)`. When a level overflows its
///   budget, its largest file (ties broken by path, for determinism)
///   merges with the overlapping files one level down.
///
/// Because levels ≥ 1 are disjoint, key-range pruning leaves a point get
/// at most one file to consult per level plus the L0 files — the
/// files-consulted bound is ≈ the level count, independent of how many
/// files the region holds in total.
#[derive(Copy, Clone, Debug, Default)]
pub struct LeveledPolicy;

impl LeveledPolicy {
    /// Byte budget of level `level ≥ 1`.
    fn level_target(cfg: &CompactionConfig, level: u32) -> usize {
        let scale = cfg.level_ratio.powi(level as i32 - 1);
        (cfg.level_base_bytes as f64 * scale) as usize
    }

    /// Indices of `level`'s files whose row range intersects the
    /// *closure* of the span seeded by `seeds`' ranges: the merge output
    /// will cover the span of everything merged, so any same-level file
    /// inside that span must join the merge or the level would end up
    /// with overlapping files (breaking the one-file-per-level read
    /// bound). Each admitted file can widen the span, so the scan
    /// repeats until it is stable.
    fn span_closure(files: &[FileMeta], seeds: &[usize], level: u32) -> Vec<usize> {
        fn widen(lo: &mut Option<Bytes>, hi: &mut Option<Bytes>, min: &Bytes, max: &Bytes) {
            if lo.as_ref().map(|l| min < l).unwrap_or(true) {
                *lo = Some(min.clone());
            }
            if hi.as_ref().map(|h| max > h).unwrap_or(true) {
                *hi = Some(max.clone());
            }
        }
        let mut lo: Option<Bytes> = None;
        let mut hi: Option<Bytes> = None;
        for &i in seeds {
            if let Some((min, max)) = &files[i].key_range {
                widen(&mut lo, &mut hi, min, max);
            }
        }
        let mut picked: Vec<usize> = Vec::new();
        loop {
            let (Some(span_lo), Some(span_hi)) = (lo.clone(), hi.clone()) else {
                return picked; // seeds are all empty files: nothing spans
            };
            let mut grew = false;
            for (i, file) in files.iter().enumerate() {
                if file.level != level || picked.contains(&i) {
                    continue;
                }
                if let Some((min, max)) = &file.key_range {
                    if *min <= span_hi && span_lo <= *max {
                        picked.push(i);
                        widen(&mut lo, &mut hi, min, max);
                        grew = true;
                    }
                }
            }
            if !grew {
                return picked;
            }
        }
    }
}

impl CompactionPolicy for LeveledPolicy {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::Leveled
    }

    fn pick(&self, files: &[FileMeta], cfg: &CompactionConfig) -> Option<CompactionJob> {
        let l0: Vec<usize> = (0..files.len()).filter(|&i| files[i].level == 0).collect();
        // L0 → L1: all of L0 (the files overlap each other, so a subset
        // would duplicate versions across levels) plus every L1 file
        // inside the closure of the combined span — the merge output
        // covers the whole span, so an L1 file left out of it would end
        // up overlapped by the output run.
        if l0.len() >= cfg.l0_trigger_files.max(2) {
            let mut inputs = l0.clone();
            inputs.extend(Self::span_closure(files, &l0, 1));
            return Some(CompactionJob {
                inputs,
                output_level: 1,
                max_output_bytes: Some(cfg.level_file_bytes),
            });
        }

        // Deepest-overflow level ≥ 1: largest file + next-level overlaps.
        let max_level = files.iter().map(|f| f.level).max().unwrap_or(0);
        let mut worst: Option<(f64, u32)> = None; // (overflow score, level)
        for level in 1..=max_level {
            let total: usize = files
                .iter()
                .filter(|f| f.level == level)
                .map(|f| f.bytes)
                .sum();
            let target = Self::level_target(cfg, level).max(1);
            let score = total as f64 / target as f64;
            if score > 1.0 && worst.map(|(s, _)| score > s).unwrap_or(true) {
                worst = Some((score, level));
            }
        }
        let (_, level) = worst?;
        let seed = (0..files.len())
            .filter(|&i| files[i].level == level)
            .max_by(|&a, &b| {
                (files[a].bytes, Reverse(&files[a].path))
                    .cmp(&(files[b].bytes, Reverse(&files[b].path)))
            })?;
        let mut inputs = vec![seed];
        inputs.extend(Self::span_closure(files, &[seed], level + 1));
        Some(CompactionJob {
            inputs,
            output_level: level + 1,
            max_output_bytes: Some(cfg.level_file_bytes),
        })
    }

    fn flush_should_stall(&self, sig: StallSignal, cfg: &CompactionConfig) -> bool {
        sig.l0_files >= cfg.stall_file_limit
    }
}

/// Picks the indices of the store files one compaction should merge, or
/// `None` if the set is below the candidacy threshold.
///
/// Size-tiered: the `max_files` smallest files are scanned for the widest
/// window whose largest member is within `tier_ratio` of its smallest —
/// merging similarly-sized files keeps rewrite cost amortized
/// (each byte is rewritten O(log n) times overall, the classic
/// size-tiered bound). If no window of at least `min_files` similar files
/// exists, the `min_files` smallest files are merged anyway so the file
/// count still converges.
pub fn pick_candidates(sizes: &[usize], cfg: &CompactionConfig) -> Option<Vec<usize>> {
    if sizes.len() < cfg.min_files.max(2) {
        return None;
    }
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| (sizes[i], i));
    let window = order.len().min(cfg.max_files);
    let order = &order[..window];

    // Widest tier window among the smallest files.
    let mut best: Option<(usize, usize)> = None; // (len, start)
    for start in 0..order.len() {
        let lo = sizes[order[start]].max(1);
        let mut end = start + 1;
        while end < order.len() && sizes[order[end]] as f64 <= lo as f64 * cfg.tier_ratio {
            end += 1;
        }
        let len = end - start;
        if len >= cfg.min_files && best.map(|(l, _)| len > l).unwrap_or(true) {
            best = Some((len, start));
        }
    }
    let picked: Vec<usize> = match best {
        Some((len, start)) => order[start..start + len].to_vec(),
        // No tier: merge the smallest files so count still shrinks.
        None => order[..cfg.min_files.min(order.len())].to_vec(),
    };
    (picked.len() >= 2).then_some(picked)
}

/// One entry in the k-way merge heap, ordered by the store-file sort key
/// `(row, column, descending ts)`, with the input index as tie-break so
/// duplicates resolve deterministically.
struct HeapKey {
    row: bytes::Bytes,
    col: bytes::Bytes,
    inv_ts: u64,
    input: usize,
    pos: usize,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.row, &self.col, self.inv_ts, self.input).cmp(&(
            &other.row,
            &other.col,
            other.inv_ts,
            other.input,
        ))
    }
}

/// The outcome of one merge.
pub struct MergeResult {
    /// The merged, garbage-collected store file.
    pub output: StoreFileData,
    /// Versions dropped (shadowed, purged or duplicate).
    pub versions_dropped: u64,
}

/// The outcome of a partitioned merge.
pub struct MultiMergeResult {
    /// The merged, garbage-collected store files, in ascending row-range
    /// order with pairwise-disjoint ranges. Empty if every input version
    /// was garbage.
    pub outputs: Vec<StoreFileData>,
    /// Versions dropped (shadowed, purged or duplicate).
    pub versions_dropped: u64,
}

/// K-way-merges `inputs` (each sorted by `(row, column, descending ts)`)
/// into one store file at `path`, garbage-collecting versions shadowed at
/// or below `gc.horizon` (see the module docs for the exact rule).
///
/// `purge_tombstones` must only be `true` for a major compaction (the
/// inputs are the region's entire file set). A tombstone is then dropped
/// only if it sits at or below `gc.purge_floor` (no recovery replay can
/// re-apply a version it shadows) *and* `has_older_elsewhere` returns
/// `false` — it must return `true` if any version of the cell older than
/// the tombstone exists outside the inputs (memstore, flushing
/// snapshot), in which case the tombstone is kept so that version stays
/// shadowed.
pub fn merge_store_files(
    region: RegionId,
    path: impl Into<String>,
    inputs: &[Rc<StoreFileData>],
    gc: GcWatermark,
    purge_tombstones: bool,
    has_older_elsewhere: &dyn Fn(&[u8], &[u8], Timestamp) -> bool,
) -> MergeResult {
    let (out, dropped) = merge_entries(inputs, gc, purge_tombstones, has_older_elsewhere);
    MergeResult {
        output: StoreFileData::from_sorted_entries(region, path, out),
        versions_dropped: dropped,
    }
}

/// Like [`merge_store_files`], but splits the merged stream at row
/// boundaries into files of roughly `max_output_bytes` each (the leveled
/// policy's disjoint runs; `None` keeps one output). `path_for(i)` names
/// the `i`-th partition. Splitting only ever happens *between* rows, so
/// each output's row range is disjoint from its siblings' and key-range
/// pruning stays exact.
pub fn merge_store_files_partitioned(
    region: RegionId,
    path_for: &dyn Fn(usize) -> String,
    inputs: &[Rc<StoreFileData>],
    gc: GcWatermark,
    purge_tombstones: bool,
    has_older_elsewhere: &dyn Fn(&[u8], &[u8], Timestamp) -> bool,
    max_output_bytes: Option<usize>,
) -> MultiMergeResult {
    let (out, dropped) = merge_entries(inputs, gc, purge_tombstones, has_older_elsewhere);
    let mut outputs = Vec::new();
    let mut part: Vec<StoreFileEntry> = Vec::new();
    let mut part_bytes = 0usize;
    for entry in out {
        let full = max_output_bytes
            .map(|max| part_bytes >= max)
            .unwrap_or(false);
        let row_boundary = part.last().map(|(r, ..)| *r != entry.0).unwrap_or(false);
        if full && row_boundary {
            let path = path_for(outputs.len());
            outputs.push(StoreFileData::from_sorted_entries(
                region,
                path,
                std::mem::take(&mut part),
            ));
            part_bytes = 0;
        }
        part_bytes +=
            entry.0.len() + entry.1.len() + entry.3.as_ref().map(Bytes::len).unwrap_or(0) + 24;
        part.push(entry);
    }
    if !part.is_empty() {
        let path = path_for(outputs.len());
        outputs.push(StoreFileData::from_sorted_entries(region, path, part));
    }
    MultiMergeResult {
        outputs,
        versions_dropped: dropped,
    }
}

/// The shared k-way merge + MVCC GC core: returns the surviving entries
/// in `(row, column, descending ts)` order plus the dropped count.
fn merge_entries(
    inputs: &[Rc<StoreFileData>],
    gc: GcWatermark,
    purge_tombstones: bool,
    has_older_elsewhere: &dyn Fn(&[u8], &[u8], Timestamp) -> bool,
) -> (Vec<StoreFileEntry>, u64) {
    let entry_lists: Vec<Vec<&StoreFileEntry>> =
        inputs.iter().map(|sf| sf.entries().collect()).collect();
    let mut heap: BinaryHeap<Reverse<HeapKey>> = BinaryHeap::new();
    for (input, list) in entry_lists.iter().enumerate() {
        if let Some((r, c, ts, _)) = list.first() {
            heap.push(Reverse(HeapKey {
                row: r.clone(),
                col: c.clone(),
                inv_ts: !ts.0,
                input,
                pos: 0,
            }));
        }
    }

    let mut out: Vec<StoreFileEntry> = Vec::new();
    let mut dropped = 0u64;
    // Per-cell GC state, valid while `current_cell` matches.
    let mut current_cell: Option<(bytes::Bytes, bytes::Bytes)> = None;
    let mut cell_resolved_below_watermark = false;
    let mut last_ts: Option<Timestamp> = None;

    while let Some(Reverse(key)) = heap.pop() {
        let (row, col, ts, value) = entry_lists[key.input][key.pos];
        if key.pos + 1 < entry_lists[key.input].len() {
            let (r, c, t, _) = entry_lists[key.input][key.pos + 1];
            heap.push(Reverse(HeapKey {
                row: r.clone(),
                col: c.clone(),
                inv_ts: !t.0,
                input: key.input,
                pos: key.pos + 1,
            }));
        }

        let same_cell = current_cell
            .as_ref()
            .map(|(r, c)| r == row && c == col)
            .unwrap_or(false);
        if !same_cell {
            current_cell = Some((row.clone(), col.clone()));
            cell_resolved_below_watermark = false;
            last_ts = None;
        }

        // Cross-file duplicate of the same version (possible after a
        // crash left both a merged file and its inputs): keep one.
        if same_cell && last_ts == Some(*ts) {
            dropped += 1;
            continue;
        }
        last_ts = Some(*ts);

        if *ts > gc.horizon {
            out.push((row.clone(), col.clone(), *ts, value.clone()));
            continue;
        }
        if cell_resolved_below_watermark {
            // Shadowed by a newer version at or below the watermark: no
            // snapshot can resolve to this version any more.
            dropped += 1;
            continue;
        }
        cell_resolved_below_watermark = true;
        let purge = purge_tombstones
            && value.is_none()
            && *ts <= gc.purge_floor
            && !has_older_elsewhere(row, col, *ts);
        if purge {
            dropped += 1;
        } else {
            out.push((row.clone(), col.clone(), *ts, value.clone()));
        }
    }

    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn file(
        region: u32,
        path: &str,
        cells: &[(&str, &str, u64, Option<&str>)],
    ) -> Rc<StoreFileData> {
        let mut ms = MemStore::new();
        for (r, c, ts, v) in cells {
            ms.apply(b(r), b(c), Timestamp(*ts), v.map(b));
        }
        Rc::new(StoreFileData::from_memstore(RegionId(region), path, &ms))
    }

    fn no_older(_r: &[u8], _c: &[u8], _ts: Timestamp) -> bool {
        false
    }

    #[test]
    fn tmp_paths_recognized() {
        assert!(is_tmp_path("/store/r1/.tmp-000001-rs0"));
        assert!(!is_tmp_path("/store/r1/000001-rs0"));
        assert!(!is_tmp_path("/store/r1.tmp-x/000001"));
    }

    #[test]
    fn pick_needs_threshold() {
        let cfg = CompactionConfig {
            min_files: 4,
            ..CompactionConfig::default()
        };
        assert_eq!(pick_candidates(&[10, 10, 10], &cfg), None);
        let picked = pick_candidates(&[10, 10, 10, 10], &cfg).expect("at threshold");
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn pick_prefers_similar_sizes() {
        let cfg = CompactionConfig {
            min_files: 2,
            max_files: 4,
            ..CompactionConfig::default()
        };
        // One huge file and three small ones: the tier is the small ones.
        let picked = pick_candidates(&[1_000_000, 10, 12, 11], &cfg).expect("candidates");
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![1, 2, 3],
            "the huge file is left alone: {picked:?}"
        );
    }

    #[test]
    fn pick_caps_at_max_files() {
        let cfg = CompactionConfig {
            min_files: 2,
            max_files: 3,
            ..CompactionConfig::default()
        };
        let picked = pick_candidates(&[5, 5, 5, 5, 5, 5], &cfg).expect("candidates");
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn pick_falls_back_when_no_tier() {
        let cfg = CompactionConfig {
            min_files: 3,
            max_files: 4,
            tier_ratio: 1.1,
            ..CompactionConfig::default()
        };
        // Exponentially spread sizes: no tier, still merges the smallest.
        let picked = pick_candidates(&[1, 100, 10_000, 1_000_000], &cfg).expect("fallback");
        let mut sorted = picked;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    fn meta(path: &str, bytes: usize, level: u32, range: Option<(&str, &str)>) -> FileMeta {
        FileMeta {
            path: path.to_owned(),
            bytes,
            entries: bytes / 100,
            level,
            key_range: range.map(|(a, z)| (b(a), b(z))),
        }
    }

    #[test]
    fn size_tiered_policy_wraps_pick_candidates() {
        let cfg = CompactionConfig {
            min_files: 2,
            max_files: 4,
            ..CompactionConfig::default()
        };
        let files = vec![
            meta("/a", 1_000_000, 0, Some(("a", "z"))),
            meta("/b", 10, 0, Some(("a", "z"))),
            meta("/c", 12, 0, Some(("a", "z"))),
        ];
        let job = SizeTieredPolicy.pick(&files, &cfg).expect("tier exists");
        let mut inputs = job.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![1, 2]);
        assert_eq!(job.output_level, 0);
        assert_eq!(job.max_output_bytes, None);
        assert!(SizeTieredPolicy.pick(&files[..1], &cfg).is_none());
    }

    #[test]
    fn leveled_l0_merge_takes_all_l0_plus_overlapping_l1() {
        let cfg = CompactionConfig {
            l0_trigger_files: 2,
            ..CompactionConfig::default()
        };
        let files = vec![
            meta("/l0-a", 100, 0, Some(("d", "m"))),
            meta("/l1-hit", 500, 1, Some(("a", "e"))),
            meta("/l1-miss", 500, 1, Some(("t", "z"))),
            meta("/l0-b", 100, 0, Some(("f", "k"))),
        ];
        let job = LeveledPolicy.pick(&files, &cfg).expect("L0 at trigger");
        let mut inputs = job.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![0, 1, 3], "all L0 + the overlapping L1 file");
        assert_eq!(job.output_level, 1);
        assert_eq!(job.max_output_bytes, Some(cfg.level_file_bytes));
    }

    #[test]
    fn leveled_overflow_pushes_largest_file_down() {
        let cfg = CompactionConfig {
            min_files: 4,
            level_base_bytes: 1_000,
            level_ratio: 10.0,
            ..CompactionConfig::default()
        };
        // One L0 file (below the trigger); L1 holds 1500 bytes > 1000.
        let files = vec![
            meta("/l0", 100, 0, Some(("a", "b"))),
            meta("/l1-big", 900, 1, Some(("c", "h"))),
            meta("/l1-small", 600, 1, Some(("m", "p"))),
            meta("/l2-hit", 300, 2, Some(("f", "j"))),
            meta("/l2-miss", 300, 2, Some(("q", "z"))),
        ];
        let job = LeveledPolicy.pick(&files, &cfg).expect("L1 overflows");
        let mut inputs = job.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![1, 3], "largest L1 file + its L2 overlap");
        assert_eq!(job.output_level, 2);
    }

    #[test]
    fn leveled_within_budget_is_idle() {
        let cfg = CompactionConfig {
            min_files: 4,
            level_base_bytes: 10_000,
            ..CompactionConfig::default()
        };
        let files = vec![
            meta("/l0", 100, 0, Some(("a", "b"))),
            meta("/l1", 900, 1, Some(("c", "h"))),
        ];
        assert!(LeveledPolicy.pick(&files, &cfg).is_none());
    }

    #[test]
    fn flush_stall_predicates() {
        let cfg = CompactionConfig {
            stall_file_limit: 3,
            ..CompactionConfig::default()
        };
        let mixed = StallSignal {
            total_files: 3,
            l0_files: 1,
        };
        // Size-tiered counts every file; leveled only counts L0.
        assert!(SizeTieredPolicy.flush_should_stall(mixed, &cfg));
        assert!(!LeveledPolicy.flush_should_stall(mixed, &cfg));
        let deep_l0 = StallSignal {
            total_files: 3,
            l0_files: 3,
        };
        assert!(LeveledPolicy.flush_should_stall(deep_l0, &cfg));
    }

    /// Regression (code review): the merge output covers the *span* of
    /// everything merged, so a same-level file sitting inside a gap of
    /// the selected inputs must join the merge — otherwise the level
    /// ends up with overlapping files and the one-file-per-level read
    /// bound silently degrades.
    #[test]
    fn leveled_merge_absorbs_same_level_files_inside_the_span() {
        let cfg = CompactionConfig {
            l0_trigger_files: 2,
            ..CompactionConfig::default()
        };
        // L0 spans [a,c] and [t,z]; G=[m,p] overlaps neither L0 file but
        // sits inside the combined output span [a,z].
        let files = vec![
            meta("/l0-a", 100, 0, Some(("a", "c"))),
            meta("/l0-b", 100, 0, Some(("t", "z"))),
            meta("/l1-gap", 500, 1, Some(("m", "p"))),
        ];
        let job = LeveledPolicy.pick(&files, &cfg).expect("L0 at trigger");
        let mut inputs = job.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(inputs, vec![0, 1, 2], "the gap file must be absorbed");

        // Closure: absorbing a file can widen the span and pull in more.
        let files = vec![
            meta("/l0-a", 100, 0, Some(("d", "e"))),
            meta("/l0-b", 100, 0, Some(("f", "g"))),
            meta("/l1-wide", 500, 1, Some(("a", "m"))),
            meta("/l1-chained", 500, 1, Some(("k", "q"))),
            meta("/l1-outside", 500, 1, Some(("r", "z"))),
        ];
        let job = LeveledPolicy.pick(&files, &cfg).expect("L0 at trigger");
        let mut inputs = job.inputs.clone();
        inputs.sort_unstable();
        assert_eq!(
            inputs,
            vec![0, 1, 2, 3],
            "the widened span pulls in the chained file but not the outside one"
        );
    }

    #[test]
    fn partitioned_merge_matches_single_merge_and_splits_disjointly() {
        let mut cells: Vec<(String, String, u64, Option<String>)> = Vec::new();
        for r in 0..20u32 {
            for ts in [5u64, 9] {
                cells.push((
                    format!("row{r:02}"),
                    "c".to_owned(),
                    ts,
                    Some(format!("v{ts}")),
                ));
            }
        }
        let borrowed: Vec<(&str, &str, u64, Option<&str>)> = cells
            .iter()
            .map(|(r, c, ts, v)| (r.as_str(), c.as_str(), *ts, v.as_deref()))
            .collect();
        let half = borrowed.len() / 2;
        let inputs = vec![
            file(1, "/a", &borrowed[..half]),
            file(1, "/b", &borrowed[half..]),
        ];
        let gc = GcWatermark::at(Timestamp(7));
        let single = merge_store_files(RegionId(1), "/m", &inputs, gc, false, &no_older);
        let parts = merge_store_files_partitioned(
            RegionId(1),
            &|i| format!("/p{i}"),
            &inputs,
            gc,
            false,
            &no_older,
            Some(200),
        );
        assert_eq!(parts.versions_dropped, single.versions_dropped);
        assert!(parts.outputs.len() > 1, "small cap must split the output");
        let total: usize = parts.outputs.iter().map(StoreFileData::len).sum();
        assert_eq!(total, single.output.len());
        // Disjoint, ascending ranges; every get resolves identically.
        for w in parts.outputs.windows(2) {
            let (_, amax) = w[0].key_range().expect("non-empty");
            let (bmin, _) = w[1].key_range().expect("non-empty");
            assert!(amax < bmin, "partition ranges overlap");
        }
        for r in 0..20u32 {
            for snap in [6u64, 100] {
                let row = format!("row{r:02}");
                let from_parts = parts
                    .outputs
                    .iter()
                    .filter_map(|sf| sf.get(row.as_bytes(), b"c", Timestamp(snap)))
                    .max_by_key(|vv| vv.ts);
                assert_eq!(
                    from_parts,
                    single.output.get(row.as_bytes(), b"c", Timestamp(snap)),
                    "row {row} snap {snap}"
                );
            }
        }
    }

    #[test]
    fn partitioned_merge_without_cap_is_one_file() {
        let inputs = vec![
            file(1, "/a", &[("r", "c", 5, Some("v5"))]),
            file(1, "/b", &[("s", "c", 3, Some("s3"))]),
        ];
        let parts = merge_store_files_partitioned(
            RegionId(1),
            &|i| format!("/p{i}"),
            &inputs,
            GcWatermark::ZERO,
            false,
            &no_older,
            None,
        );
        assert_eq!(parts.outputs.len(), 1);
        assert_eq!(parts.outputs[0].len(), 2);
    }

    #[test]
    fn merge_keeps_newest_visible_below_watermark() {
        let a = file(
            1,
            "/a",
            &[("r", "c", 5, Some("v5")), ("r", "c", 10, Some("v10"))],
        );
        let c = file(
            1,
            "/b",
            &[("r", "c", 20, Some("v20")), ("s", "c", 3, Some("s3"))],
        );
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a, c],
            GcWatermark::at(Timestamp(15)),
            false,
            &no_older,
        );
        // v5 is shadowed by v10 at watermark 15; v20 is above the
        // watermark and kept; s3 is the newest visible for its cell.
        assert_eq!(merged.versions_dropped, 1);
        let out = merged.output;
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.get(b"r", b"c", Timestamp(15)).unwrap().value,
            Some(b("v10"))
        );
        assert_eq!(
            out.get(b"r", b"c", Timestamp::MAX).unwrap().value,
            Some(b("v20"))
        );
        assert_eq!(
            out.get(b"r", b"c", Timestamp(9)),
            None,
            "v5 was garbage-collected"
        );
        assert_eq!(
            out.get(b"s", b"c", Timestamp::MAX).unwrap().value,
            Some(b("s3"))
        );
    }

    #[test]
    fn merge_purges_tombstones_only_when_allowed() {
        let mk = || {
            vec![
                file(1, "/a", &[("r", "c", 5, Some("v5"))]),
                file(1, "/b", &[("r", "c", 10, None)]),
            ]
        };
        // Minor compaction: tombstone kept (an older version could live in
        // a non-input file).
        let minor = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            false,
            &no_older,
        );
        assert_eq!(
            minor.output.get(b"r", b"c", Timestamp(50)).unwrap().value,
            None
        );
        // Major compaction with nothing older elsewhere: cell disappears.
        let major = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            true,
            &no_older,
        );
        assert!(major.output.is_empty());
        assert_eq!(major.versions_dropped, 2);
        // Major compaction but the guard reports an older version in the
        // memstore: the tombstone must stay to shadow it.
        let major_guarded = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            true,
            &|_, _, _| true,
        );
        assert_eq!(
            major_guarded
                .output
                .get(b"r", b"c", Timestamp(50))
                .unwrap()
                .value,
            None
        );
    }

    #[test]
    fn purge_respects_the_recovery_log_floor() {
        // Tombstone at ts 10, horizon 50, but the recovery log is only
        // truncated below 5: a replay could still re-apply the shadowed
        // put, so the tombstone must survive the major compaction.
        let files = vec![
            file(1, "/a", &[("r", "c", 4, Some("v4"))]),
            file(1, "/b", &[("r", "c", 10, None)]),
        ];
        let gc = GcWatermark {
            horizon: Timestamp(50),
            purge_floor: Timestamp(5),
        };
        let merged = merge_store_files(RegionId(1), "/m", &files, gc, true, &no_older);
        assert_eq!(
            merged.output.get(b"r", b"c", Timestamp(50)).unwrap().value,
            None,
            "tombstone above the purge floor must be kept"
        );
        // Once the floor passes the tombstone, the cell purges fully.
        let gc = GcWatermark {
            horizon: Timestamp(50),
            purge_floor: Timestamp(10),
        };
        let merged = merge_store_files(RegionId(1), "/m", &files, gc, true, &no_older);
        assert!(merged.output.is_empty());
    }

    #[test]
    fn merge_dedups_cross_file_duplicates() {
        // The same version in two files (post-crash overlap).
        let a = file(1, "/a", &[("r", "c", 7, Some("v"))]);
        let c = file(1, "/b", &[("r", "c", 7, Some("v"))]);
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a, c],
            GcWatermark::ZERO,
            false,
            &no_older,
        );
        assert_eq!(merged.output.len(), 1);
        assert_eq!(merged.versions_dropped, 1);
    }

    #[test]
    fn merge_at_zero_watermark_preserves_everything() {
        let a = file(
            1,
            "/a",
            &[("r", "c", 5, Some("v5")), ("r", "c", 10, Some("v10"))],
        );
        let c = file(1, "/b", &[("r", "c", 8, None)]);
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a.clone(), c.clone()],
            GcWatermark::ZERO,
            false,
            &no_older,
        );
        assert_eq!(merged.versions_dropped, 0);
        for snap in [0u64, 5, 7, 8, 9, 10, 100] {
            let want = [&a, &c]
                .iter()
                .filter_map(|sf| sf.get(b"r", b"c", Timestamp(snap)))
                .max_by_key(|vv| vv.ts);
            assert_eq!(
                merged.output.get(b"r", b"c", Timestamp(snap)),
                want,
                "snap {snap}"
            );
        }
    }
}
