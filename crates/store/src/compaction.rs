//! Background store-file compaction with MVCC garbage collection.
//!
//! Every memstore flush appends another immutable store file to its
//! region, and every read must consult all of them — unbounded *read
//! amplification*. Compaction is the maintenance stage that merges a
//! region's store files back down: a size-tiered policy picks a candidate
//! set once the file count crosses a threshold, a k-way merge rewrites
//! them as one file, and versions no reader can observe any more are
//! garbage-collected along the way.
//!
//! ## MVCC garbage collection
//!
//! Versions are commit timestamps. A version of a cell is *garbage* when
//! it is shadowed by a newer version at or below the **GC watermark** —
//! the oldest snapshot any current or future reader can hold (the
//! transaction manager's oldest pinned snapshot; see
//! `cumulo-txn`'s oracle). The merge keeps, per cell:
//!
//! * every version newer than the watermark (some reader may still need
//!   to see *around* it), and
//! * the newest version at or below the watermark (what every old-enough
//!   snapshot resolves to),
//!
//! and drops the rest. When the compaction covers the region's entire
//! file set (a *major* compaction), a kept tombstone at or below the
//! watermark can itself be dropped — there is nothing left for it to
//! shadow — provided two additional conditions hold:
//!
//! * the caller-supplied guard confirms no older version of the cell
//!   survives outside the inputs (e.g. replayed recovered edits sitting
//!   in the memstore), and
//! * the tombstone is at or below the **purge floor**
//!   ([`GcWatermark::purge_floor`]), the recovery log's truncation
//!   point. Client- and server-recovery replays re-apply write-sets
//!   still present in the recovery log; a version the tombstone shadows
//!   could be re-applied later and, with the tombstone gone, would be
//!   resurrected. Below the truncation point the log no longer holds
//!   such records, so nothing can come back.
//!
//! ## Crash safety
//!
//! The merged file is written to the distributed filesystem under a
//! temporary dot-name inside the region directory and *renamed* into its
//! final name only after the write is fully replicated. A server crash
//! mid-compaction therefore leaves at worst an ignorable `.tmp-` file:
//! region recovery skips temp names, and the input files — which are
//! deleted only after the swap — still cover all data. If the crash lands
//! after the rename but before the inputs are deleted, recovery sees the
//! merged file *and* the inputs; that duplication is read-equivalent
//! because the merged file contains exactly the surviving versions of its
//! inputs.
//!
//! ## Compaction and the read-path service model
//!
//! A point get pays, per region, one `storefile_read_service` term for
//! every store file it *consults* beyond the first. Which files those are
//! is decided by per-file metadata (see `sstable.rs`): key-range pruning
//! excludes files whose min/max row range misses the key for free, and a
//! per-file bloom filter over `(row, column)` pairs excludes most of the
//! rest at a small `filter_probe_service` cost each. Compaction interacts
//! with that model in two ways: it bounds the *file count* (and with it
//! the number of probes a get pays), and its merge output is rebuilt with
//! fresh range and filter metadata via
//! [`StoreFileData::from_sorted_entries`] — dropping the inputs' filters
//! and creating one sized for the surviving entries, which
//! [`CompactionStats::filter_bytes_dropped`] and
//! [`CompactionStats::filter_bytes_created`] make observable. Scans
//! cannot use per-key filters; for them only range pruning and the file
//! count bound apply.

use crate::sstable::{StoreFileData, StoreFileEntry};
use crate::types::{RegionId, Timestamp};
use cumulo_sim::metrics::{Counter, Gauge};
use cumulo_sim::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Marker prefix of in-flight compaction outputs. Files with this
/// basename prefix are skipped by region recovery and may be deleted
/// freely.
pub const TMP_PREFIX: &str = ".tmp-";

/// Whether a store-file path names an in-flight (ignorable) compaction
/// temporary.
pub fn is_tmp_path(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .map(|base| base.starts_with(TMP_PREFIX))
        .unwrap_or(false)
}

/// The pair of timestamps that bound what MVCC garbage collection may
/// drop (see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GcWatermark {
    /// The oldest snapshot any current or future reader can hold:
    /// versions *shadowed* at or below this may be dropped.
    pub horizon: Timestamp,
    /// The recovery log's truncation point: tombstones may only be
    /// *purged* at or below this, because write-sets above it can still
    /// be re-applied by recovery replays.
    pub purge_floor: Timestamp,
}

impl GcWatermark {
    /// A watermark that garbage-collects nothing (the safe default when
    /// no transactional tier is wired in).
    pub const ZERO: GcWatermark = GcWatermark {
        horizon: Timestamp::ZERO,
        purge_floor: Timestamp::ZERO,
    };

    /// A watermark using one timestamp for both bounds (convenient in
    /// tests and in deployments without recovery replay).
    pub fn at(ts: Timestamp) -> GcWatermark {
        GcWatermark {
            horizon: ts,
            purge_floor: ts,
        }
    }
}

/// Compaction tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct CompactionConfig {
    /// Master switch.
    pub enabled: bool,
    /// Store-file count at which a region becomes a compaction candidate.
    pub min_files: usize,
    /// Most files merged by one compaction.
    pub max_files: usize,
    /// Size-tier tolerance: files within this ratio of each other count
    /// as one tier and are merged together preferentially.
    pub tier_ratio: f64,
    /// How often regions are checked for compaction candidacy.
    pub check_interval: SimDuration,
    /// Handler CPU charged per merged version — compaction competes with
    /// foreground requests for the same handler slots.
    pub merge_service_per_entry: SimDuration,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            enabled: true,
            min_files: 4,
            max_files: 10,
            tier_ratio: 3.0,
            check_interval: SimDuration::from_secs(2),
            merge_service_per_entry: SimDuration::from_nanos(150),
        }
    }
}

/// Shared observability for a server's compactions (all handles clone
/// cheaply and share state, like the other `cumulo_sim::metrics` types).
#[derive(Clone, Default, Debug)]
pub struct CompactionStats {
    /// Compactions started (a crash can leave this ahead of `completed`).
    pub started: Counter,
    /// Compactions that swapped their merged file in.
    pub completed: Counter,
    /// Bytes written into merged output files.
    pub bytes_rewritten: Counter,
    /// MVCC versions garbage-collected (shadowed versions, purged
    /// tombstones and cross-file duplicates).
    pub versions_dropped: Counter,
    /// Input files retired (removed from region file lists).
    pub files_retired: Counter,
    /// Obsolete-file deletions confirmed by the filesystem.
    pub deletes_confirmed: Counter,
    /// Bytes of bloom-filter metadata retired with the input files —
    /// together with `filter_bytes_created`, the filter overhead a
    /// compaction churns.
    pub filter_bytes_dropped: Counter,
    /// Bytes of bloom-filter metadata built for merged output files.
    pub filter_bytes_created: Counter,
    /// Current worst-case read amplification: the largest store-file
    /// count across the server's hosted regions.
    pub read_amplification: Gauge,
}

/// Picks the indices of the store files one compaction should merge, or
/// `None` if the set is below the candidacy threshold.
///
/// Size-tiered: the `max_files` smallest files are scanned for the widest
/// window whose largest member is within `tier_ratio` of its smallest —
/// merging similarly-sized files keeps rewrite cost amortized
/// (each byte is rewritten O(log n) times overall, the classic
/// size-tiered bound). If no window of at least `min_files` similar files
/// exists, the `min_files` smallest files are merged anyway so the file
/// count still converges.
pub fn pick_candidates(sizes: &[usize], cfg: &CompactionConfig) -> Option<Vec<usize>> {
    if sizes.len() < cfg.min_files.max(2) {
        return None;
    }
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| (sizes[i], i));
    let window = order.len().min(cfg.max_files);
    let order = &order[..window];

    // Widest tier window among the smallest files.
    let mut best: Option<(usize, usize)> = None; // (len, start)
    for start in 0..order.len() {
        let lo = sizes[order[start]].max(1);
        let mut end = start + 1;
        while end < order.len() && sizes[order[end]] as f64 <= lo as f64 * cfg.tier_ratio {
            end += 1;
        }
        let len = end - start;
        if len >= cfg.min_files && best.map(|(l, _)| len > l).unwrap_or(true) {
            best = Some((len, start));
        }
    }
    let picked: Vec<usize> = match best {
        Some((len, start)) => order[start..start + len].to_vec(),
        // No tier: merge the smallest files so count still shrinks.
        None => order[..cfg.min_files.min(order.len())].to_vec(),
    };
    (picked.len() >= 2).then_some(picked)
}

/// One entry in the k-way merge heap, ordered by the store-file sort key
/// `(row, column, descending ts)`, with the input index as tie-break so
/// duplicates resolve deterministically.
struct HeapKey {
    row: bytes::Bytes,
    col: bytes::Bytes,
    inv_ts: u64,
    input: usize,
    pos: usize,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.row, &self.col, self.inv_ts, self.input).cmp(&(
            &other.row,
            &other.col,
            other.inv_ts,
            other.input,
        ))
    }
}

/// The outcome of one merge.
pub struct MergeResult {
    /// The merged, garbage-collected store file.
    pub output: StoreFileData,
    /// Versions dropped (shadowed, purged or duplicate).
    pub versions_dropped: u64,
}

/// K-way-merges `inputs` (each sorted by `(row, column, descending ts)`)
/// into one store file at `path`, garbage-collecting versions shadowed at
/// or below `gc.horizon` (see the module docs for the exact rule).
///
/// `purge_tombstones` must only be `true` for a major compaction (the
/// inputs are the region's entire file set). A tombstone is then dropped
/// only if it sits at or below `gc.purge_floor` (no recovery replay can
/// re-apply a version it shadows) *and* `has_older_elsewhere` returns
/// `false` — it must return `true` if any version of the cell older than
/// the tombstone exists outside the inputs (memstore, flushing
/// snapshot), in which case the tombstone is kept so that version stays
/// shadowed.
pub fn merge_store_files(
    region: RegionId,
    path: impl Into<String>,
    inputs: &[Rc<StoreFileData>],
    gc: GcWatermark,
    purge_tombstones: bool,
    has_older_elsewhere: &dyn Fn(&[u8], &[u8], Timestamp) -> bool,
) -> MergeResult {
    let entry_lists: Vec<Vec<&StoreFileEntry>> =
        inputs.iter().map(|sf| sf.entries().collect()).collect();
    let mut heap: BinaryHeap<Reverse<HeapKey>> = BinaryHeap::new();
    for (input, list) in entry_lists.iter().enumerate() {
        if let Some((r, c, ts, _)) = list.first() {
            heap.push(Reverse(HeapKey {
                row: r.clone(),
                col: c.clone(),
                inv_ts: !ts.0,
                input,
                pos: 0,
            }));
        }
    }

    let mut out: Vec<StoreFileEntry> = Vec::new();
    let mut dropped = 0u64;
    // Per-cell GC state, valid while `current_cell` matches.
    let mut current_cell: Option<(bytes::Bytes, bytes::Bytes)> = None;
    let mut cell_resolved_below_watermark = false;
    let mut last_ts: Option<Timestamp> = None;

    while let Some(Reverse(key)) = heap.pop() {
        let (row, col, ts, value) = entry_lists[key.input][key.pos];
        if key.pos + 1 < entry_lists[key.input].len() {
            let (r, c, t, _) = entry_lists[key.input][key.pos + 1];
            heap.push(Reverse(HeapKey {
                row: r.clone(),
                col: c.clone(),
                inv_ts: !t.0,
                input: key.input,
                pos: key.pos + 1,
            }));
        }

        let same_cell = current_cell
            .as_ref()
            .map(|(r, c)| r == row && c == col)
            .unwrap_or(false);
        if !same_cell {
            current_cell = Some((row.clone(), col.clone()));
            cell_resolved_below_watermark = false;
            last_ts = None;
        }

        // Cross-file duplicate of the same version (possible after a
        // crash left both a merged file and its inputs): keep one.
        if same_cell && last_ts == Some(*ts) {
            dropped += 1;
            continue;
        }
        last_ts = Some(*ts);

        if *ts > gc.horizon {
            out.push((row.clone(), col.clone(), *ts, value.clone()));
            continue;
        }
        if cell_resolved_below_watermark {
            // Shadowed by a newer version at or below the watermark: no
            // snapshot can resolve to this version any more.
            dropped += 1;
            continue;
        }
        cell_resolved_below_watermark = true;
        let purge = purge_tombstones
            && value.is_none()
            && *ts <= gc.purge_floor
            && !has_older_elsewhere(row, col, *ts);
        if purge {
            dropped += 1;
        } else {
            out.push((row.clone(), col.clone(), *ts, value.clone()));
        }
    }

    MergeResult {
        output: StoreFileData::from_sorted_entries(region, path, out),
        versions_dropped: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn file(
        region: u32,
        path: &str,
        cells: &[(&str, &str, u64, Option<&str>)],
    ) -> Rc<StoreFileData> {
        let mut ms = MemStore::new();
        for (r, c, ts, v) in cells {
            ms.apply(b(r), b(c), Timestamp(*ts), v.map(b));
        }
        Rc::new(StoreFileData::from_memstore(RegionId(region), path, &ms))
    }

    fn no_older(_r: &[u8], _c: &[u8], _ts: Timestamp) -> bool {
        false
    }

    #[test]
    fn tmp_paths_recognized() {
        assert!(is_tmp_path("/store/r1/.tmp-000001-rs0"));
        assert!(!is_tmp_path("/store/r1/000001-rs0"));
        assert!(!is_tmp_path("/store/r1.tmp-x/000001"));
    }

    #[test]
    fn pick_needs_threshold() {
        let cfg = CompactionConfig {
            min_files: 4,
            ..CompactionConfig::default()
        };
        assert_eq!(pick_candidates(&[10, 10, 10], &cfg), None);
        let picked = pick_candidates(&[10, 10, 10, 10], &cfg).expect("at threshold");
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn pick_prefers_similar_sizes() {
        let cfg = CompactionConfig {
            min_files: 2,
            max_files: 4,
            ..CompactionConfig::default()
        };
        // One huge file and three small ones: the tier is the small ones.
        let picked = pick_candidates(&[1_000_000, 10, 12, 11], &cfg).expect("candidates");
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![1, 2, 3],
            "the huge file is left alone: {picked:?}"
        );
    }

    #[test]
    fn pick_caps_at_max_files() {
        let cfg = CompactionConfig {
            min_files: 2,
            max_files: 3,
            ..CompactionConfig::default()
        };
        let picked = pick_candidates(&[5, 5, 5, 5, 5, 5], &cfg).expect("candidates");
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn pick_falls_back_when_no_tier() {
        let cfg = CompactionConfig {
            min_files: 3,
            max_files: 4,
            tier_ratio: 1.1,
            ..CompactionConfig::default()
        };
        // Exponentially spread sizes: no tier, still merges the smallest.
        let picked = pick_candidates(&[1, 100, 10_000, 1_000_000], &cfg).expect("fallback");
        let mut sorted = picked;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn merge_keeps_newest_visible_below_watermark() {
        let a = file(
            1,
            "/a",
            &[("r", "c", 5, Some("v5")), ("r", "c", 10, Some("v10"))],
        );
        let c = file(
            1,
            "/b",
            &[("r", "c", 20, Some("v20")), ("s", "c", 3, Some("s3"))],
        );
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a, c],
            GcWatermark::at(Timestamp(15)),
            false,
            &no_older,
        );
        // v5 is shadowed by v10 at watermark 15; v20 is above the
        // watermark and kept; s3 is the newest visible for its cell.
        assert_eq!(merged.versions_dropped, 1);
        let out = merged.output;
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.get(b"r", b"c", Timestamp(15)).unwrap().value,
            Some(b("v10"))
        );
        assert_eq!(
            out.get(b"r", b"c", Timestamp::MAX).unwrap().value,
            Some(b("v20"))
        );
        assert_eq!(
            out.get(b"r", b"c", Timestamp(9)),
            None,
            "v5 was garbage-collected"
        );
        assert_eq!(
            out.get(b"s", b"c", Timestamp::MAX).unwrap().value,
            Some(b("s3"))
        );
    }

    #[test]
    fn merge_purges_tombstones_only_when_allowed() {
        let mk = || {
            vec![
                file(1, "/a", &[("r", "c", 5, Some("v5"))]),
                file(1, "/b", &[("r", "c", 10, None)]),
            ]
        };
        // Minor compaction: tombstone kept (an older version could live in
        // a non-input file).
        let minor = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            false,
            &no_older,
        );
        assert_eq!(
            minor.output.get(b"r", b"c", Timestamp(50)).unwrap().value,
            None
        );
        // Major compaction with nothing older elsewhere: cell disappears.
        let major = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            true,
            &no_older,
        );
        assert!(major.output.is_empty());
        assert_eq!(major.versions_dropped, 2);
        // Major compaction but the guard reports an older version in the
        // memstore: the tombstone must stay to shadow it.
        let major_guarded = merge_store_files(
            RegionId(1),
            "/m",
            &mk(),
            GcWatermark::at(Timestamp(50)),
            true,
            &|_, _, _| true,
        );
        assert_eq!(
            major_guarded
                .output
                .get(b"r", b"c", Timestamp(50))
                .unwrap()
                .value,
            None
        );
    }

    #[test]
    fn purge_respects_the_recovery_log_floor() {
        // Tombstone at ts 10, horizon 50, but the recovery log is only
        // truncated below 5: a replay could still re-apply the shadowed
        // put, so the tombstone must survive the major compaction.
        let files = vec![
            file(1, "/a", &[("r", "c", 4, Some("v4"))]),
            file(1, "/b", &[("r", "c", 10, None)]),
        ];
        let gc = GcWatermark {
            horizon: Timestamp(50),
            purge_floor: Timestamp(5),
        };
        let merged = merge_store_files(RegionId(1), "/m", &files, gc, true, &no_older);
        assert_eq!(
            merged.output.get(b"r", b"c", Timestamp(50)).unwrap().value,
            None,
            "tombstone above the purge floor must be kept"
        );
        // Once the floor passes the tombstone, the cell purges fully.
        let gc = GcWatermark {
            horizon: Timestamp(50),
            purge_floor: Timestamp(10),
        };
        let merged = merge_store_files(RegionId(1), "/m", &files, gc, true, &no_older);
        assert!(merged.output.is_empty());
    }

    #[test]
    fn merge_dedups_cross_file_duplicates() {
        // The same version in two files (post-crash overlap).
        let a = file(1, "/a", &[("r", "c", 7, Some("v"))]);
        let c = file(1, "/b", &[("r", "c", 7, Some("v"))]);
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a, c],
            GcWatermark::ZERO,
            false,
            &no_older,
        );
        assert_eq!(merged.output.len(), 1);
        assert_eq!(merged.versions_dropped, 1);
    }

    #[test]
    fn merge_at_zero_watermark_preserves_everything() {
        let a = file(
            1,
            "/a",
            &[("r", "c", 5, Some("v5")), ("r", "c", 10, Some("v10"))],
        );
        let c = file(1, "/b", &[("r", "c", 8, None)]);
        let merged = merge_store_files(
            RegionId(1),
            "/m",
            &[a.clone(), c.clone()],
            GcWatermark::ZERO,
            false,
            &no_older,
        );
        assert_eq!(merged.versions_dropped, 0);
        for snap in [0u64, 5, 7, 8, 9, 10, 100] {
            let want = [&a, &c]
                .iter()
                .filter_map(|sf| sf.get(b"r", b"c", Timestamp(snap)))
                .max_by_key(|vv| vv.ts);
            assert_eq!(
                merged.output.get(b"r", b"c", Timestamp(snap)),
                want,
                "snap {snap}"
            );
        }
    }
}
