//! Core identifiers and data-model types shared across the stack.

use bytes::Bytes;
use std::fmt;

/// Identifier of a region server process.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rs{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rs{}", self.0)
    }
}

/// Identifier of a key-value client process (the paper's "HBase client").
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a region (a contiguous key range of the table).
///
/// Region ids are never reused: an online split retires the parent's id
/// and allocates two fresh daughter ids above every id ever issued, so a
/// cached id always denotes the same key range (a stale cache can be
/// *incomplete*, never *wrong* about boundaries).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A commit timestamp / version number.
///
/// Commit timestamps are assigned monotonically by the transaction manager
/// and double as MVCC version numbers in the store, which is what makes
/// write-set replay idempotent (§2.2 of the paper: replaying a write-set
/// stamps the same versions, so applying it twice is a no-op).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (before any transaction committed).
    pub const ZERO: Timestamp = Timestamp(0);
    /// A timestamp later than every assignable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// The next timestamp.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What a mutation does to a cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// Write the given value.
    Put(Bytes),
    /// Delete the cell (a tombstone at the mutation's version).
    Delete,
}

/// One cell-level write: the unit the paper's write-sets are made of.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mutation {
    /// Row key.
    pub row: Bytes,
    /// Column qualifier.
    pub column: Bytes,
    /// Put or delete.
    pub kind: MutationKind,
}

impl Mutation {
    /// Creates a put mutation.
    pub fn put(
        row: impl Into<Bytes>,
        column: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Mutation {
        Mutation {
            row: row.into(),
            column: column.into(),
            kind: MutationKind::Put(value.into()),
        }
    }

    /// Creates a delete mutation.
    pub fn delete(row: impl Into<Bytes>, column: impl Into<Bytes>) -> Mutation {
        Mutation {
            row: row.into(),
            column: column.into(),
            kind: MutationKind::Delete,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        let v = match &self.kind {
            MutationKind::Put(v) => v.len(),
            MutationKind::Delete => 0,
        };
        16 + self.row.len() + self.column.len() + v
    }
}

/// A committed transaction's buffered writes, stamped with its commit
/// timestamp when flushed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WriteSet {
    /// The mutations, in the order the transaction issued them.
    pub mutations: Vec<Mutation>,
}

impl WriteSet {
    /// Creates an empty write-set.
    pub fn new() -> WriteSet {
        WriteSet::default()
    }

    /// Adds a mutation, replacing an earlier write to the same cell (last
    /// write within a transaction wins, as both end up with the same
    /// version anyway).
    pub fn push(&mut self, m: Mutation) {
        if let Some(existing) = self
            .mutations
            .iter_mut()
            .find(|e| e.row == m.row && e.column == m.column)
        {
            *existing = m;
        } else {
            self.mutations.push(m);
        }
    }

    /// The buffered value for a cell, if this write-set wrote it
    /// (read-your-own-writes support).
    pub fn get(&self, row: &[u8], column: &[u8]) -> Option<&MutationKind> {
        self.mutations
            .iter()
            .rev()
            .find(|m| m.row == row && m.column == column)
            .map(|m| &m.kind)
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the write-set has no mutations (read-only transaction).
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        16 + self
            .mutations
            .iter()
            .map(Mutation::wire_size)
            .sum::<usize>()
    }
}

impl FromIterator<Mutation> for WriteSet {
    fn from_iter<T: IntoIterator<Item = Mutation>>(iter: T) -> Self {
        let mut ws = WriteSet::new();
        for m in iter {
            ws.push(m);
        }
        ws
    }
}

impl Extend<Mutation> for WriteSet {
    fn extend<T: IntoIterator<Item = Mutation>>(&mut self, iter: T) {
        for m in iter {
            self.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_next() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(1).next(), Timestamp(2));
        assert!(Timestamp::ZERO < Timestamp::MAX);
        assert_eq!(format!("{}", Timestamp(7)), "7");
        assert_eq!(format!("{:?}", Timestamp(7)), "ts7");
    }

    #[test]
    fn ids_display() {
        assert_eq!(ServerId(3).to_string(), "rs3");
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(RegionId(3).to_string(), "r3");
    }

    #[test]
    fn write_set_last_write_wins_per_cell() {
        let mut ws = WriteSet::new();
        ws.push(Mutation::put("r1", "a", "v1"));
        ws.push(Mutation::put("r1", "b", "v2"));
        ws.push(Mutation::put("r1", "a", "v3"));
        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws.get(b"r1", b"a"),
            Some(&MutationKind::Put(Bytes::from_static(b"v3")))
        );
        assert_eq!(
            ws.get(b"r1", b"b"),
            Some(&MutationKind::Put(Bytes::from_static(b"v2")))
        );
        assert_eq!(ws.get(b"r1", b"zz"), None);
    }

    #[test]
    fn write_set_delete_shadows_put() {
        let mut ws = WriteSet::new();
        ws.push(Mutation::put("r", "c", "v"));
        ws.push(Mutation::delete("r", "c"));
        assert_eq!(ws.get(b"r", b"c"), Some(&MutationKind::Delete));
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn write_set_collects_from_iterator() {
        let ws: WriteSet = vec![Mutation::put("a", "c", "1"), Mutation::put("b", "c", "2")]
            .into_iter()
            .collect();
        assert_eq!(ws.len(), 2);
        let mut ws2 = WriteSet::new();
        ws2.extend(vec![Mutation::put("a", "c", "1")]);
        assert_eq!(ws2.len(), 1);
    }

    #[test]
    fn wire_sizes_are_positive_and_scale() {
        let small = Mutation::put("r", "c", "v").wire_size();
        let big = Mutation::put("r", "c", vec![0u8; 1000]).wire_size();
        assert!(big > small + 900);
        let ws: WriteSet = vec![Mutation::delete("r", "c")].into_iter().collect();
        assert!(ws.wire_size() > 0);
    }
}
