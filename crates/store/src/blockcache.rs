//! LRU block cache.
//!
//! A region server serves reads from its block cache when possible and
//! pays a filesystem block fetch otherwise. After a failover the server
//! that inherits a region has none of its blocks cached — which is exactly
//! the ~30-second warm-up the paper observes after recovery (Fig. 3):
//! "the longer delay in returning to pre-failure performance levels is due
//! to the region server cache taking a while to warm up".
//!
//! Keys are `(region, row)` pairs: we model cache residency at row
//! granularity, which is what decides hit-or-miss service time.
//!
//! The hot read path hits [`BlockCache::access`] once per get, so the
//! index is a two-level `HashMap<RegionId, HashMap<Bytes, usize>>` into
//! the intrusive LRU list: hit-path lookups are O(1) *and*
//! allocation-free (the inner map is queried by `&[u8]`, no owned key is
//! built for a probe), and evicting a region on a move or compaction
//! walks only that region's entries instead of the whole cache.

use crate::types::RegionId;
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;

type Key = (RegionId, Bytes);

const NIL: usize = usize::MAX;

struct Entry {
    key: Key,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU set of cached blocks.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use cumulo_store::{BlockCache, RegionId};
///
/// let mut cache = BlockCache::new(2);
/// let r = RegionId(0);
/// cache.insert(r, Bytes::from_static(b"a"));
/// cache.insert(r, Bytes::from_static(b"b"));
/// cache.insert(r, Bytes::from_static(b"c")); // evicts "a"
/// assert!(!cache.contains(r, b"a"));
/// assert!(cache.contains(r, b"b"));
/// assert!(cache.contains(r, b"c"));
/// ```
pub struct BlockCache {
    capacity: usize,
    /// Per-region index into `entries`; the inner map is queried by
    /// borrowed `&[u8]` rows so the hit path never allocates.
    map: HashMap<RegionId, HashMap<Bytes, usize>>,
    len: usize,
    entries: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockCache")
            .field("len", &self.len)
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BlockCache {
        assert!(capacity > 0, "cache capacity must be non-zero");
        BlockCache {
            capacity,
            map: HashMap::new(),
            len: 0,
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Checks residency *and records the access*: a hit refreshes the
    /// entry's recency, a miss bumps the miss counter. This is the method
    /// the read path uses — one O(1) borrowed lookup, no allocation.
    pub fn access(&mut self, region: RegionId, row: &[u8]) -> bool {
        let hit = self
            .map
            .get(&region)
            .and_then(|rows| rows.get(row))
            .copied();
        if let Some(idx) = hit {
            self.hits += 1;
            self.detach(idx);
            self.attach_front(idx);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Pure residency check, with no recency or statistics side effects.
    pub fn contains(&self, region: RegionId, row: &[u8]) -> bool {
        self.map
            .get(&region)
            .map(|rows| rows.contains_key(row))
            .unwrap_or(false)
    }

    /// Removes `key` from the index, dropping its region's inner map when
    /// it empties (a region that moved away should not pin an entry).
    fn unindex(&mut self, key: &Key) -> Option<usize> {
        let rows = self.map.get_mut(&key.0)?;
        let idx = rows.remove(&key.1);
        if idx.is_some() {
            self.len -= 1;
            if rows.is_empty() {
                self.map.remove(&key.0);
            }
        }
        idx
    }

    /// Inserts a block (after a miss fetched it), evicting the least
    /// recently used block if full.
    pub fn insert(&mut self, region: RegionId, row: Bytes) {
        if let Some(&idx) = self.map.get(&region).and_then(|rows| rows.get(&row)) {
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.len >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let vkey = self.entries[victim].key.clone();
            self.unindex(&vkey);
            self.free.push(victim);
            self.evictions += 1;
        }
        let key = (region, row);
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i] = Entry {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.entries.push(Entry {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.entries.len() - 1
            }
        };
        self.map.entry(region).or_default().insert(key.1, idx);
        self.len += 1;
        self.attach_front(idx);
    }

    /// Drops every cached block of `region` (used when a region moves away
    /// from this server or a compaction rewrites its blocks). O(blocks of
    /// `region`), not O(cache).
    pub fn evict_region(&mut self, region: RegionId) {
        let Some(rows) = self.map.remove(&region) else {
            return;
        };
        self.len -= rows.len();
        // Slot indices are internal, but free-list order decides which
        // slot a future insert reuses — keep it independent of HashMap
        // iteration order so identical runs stay byte-identical in every
        // observable detail (the repo's determinism invariant).
        let mut doomed: Vec<usize> = rows.into_values().collect();
        doomed.sort_unstable();
        for idx in doomed {
            self.detach(idx);
            self.free.push(idx);
        }
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total recorded hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total recorded misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit fraction over all accesses (0 if never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_insert_access() {
        let mut c = BlockCache::new(10);
        let r = RegionId(0);
        assert!(!c.access(r, b"x"));
        c.insert(r, b("x"));
        assert!(c.access(r, b"x"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(3);
        let r = RegionId(0);
        c.insert(r, b("a"));
        c.insert(r, b("b"));
        c.insert(r, b("c"));
        // Touch "a" so "b" becomes LRU.
        assert!(c.access(r, b"a"));
        c.insert(r, b("d"));
        assert!(c.contains(r, b"a"));
        assert!(!c.contains(r, b"b"));
        assert!(c.contains(r, b"c"));
        assert!(c.contains(r, b"d"));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut c = BlockCache::new(2);
        let r = RegionId(0);
        c.insert(r, b("a"));
        c.insert(r, b("b"));
        c.insert(r, b("a")); // refresh
        c.insert(r, b("c")); // evicts b (LRU), not a
        assert!(c.contains(r, b"a"));
        assert!(!c.contains(r, b"b"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn regions_are_distinct() {
        let mut c = BlockCache::new(10);
        c.insert(RegionId(0), b("x"));
        assert!(c.contains(RegionId(0), b"x"));
        assert!(!c.contains(RegionId(1), b"x"));
    }

    #[test]
    fn evict_region_clears_only_that_region() {
        let mut c = BlockCache::new(10);
        c.insert(RegionId(0), b("x"));
        c.insert(RegionId(0), b("y"));
        c.insert(RegionId(1), b("x"));
        c.evict_region(RegionId(0));
        assert_eq!(c.len(), 1);
        assert!(c.contains(RegionId(1), b"x"));
        // Slots are recycled.
        c.insert(RegionId(2), b("z"));
        c.insert(RegionId(2), b("w"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn single_slot_cache() {
        let mut c = BlockCache::new(1);
        let r = RegionId(0);
        c.insert(r, b("a"));
        c.insert(r, b("b"));
        assert!(!c.contains(r, b"a"));
        assert!(c.contains(r, b"b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = BlockCache::new(0);
    }

    #[test]
    fn heavy_churn_consistency() {
        // Cross-check against a naive model on a few thousand operations.
        let mut c = BlockCache::new(50);
        let mut model: Vec<Bytes> = Vec::new(); // front = MRU
        let r = RegionId(0);
        let mut x: u64 = 12345;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = b(&format!("k{}", x % 120));
            if x.is_multiple_of(3) {
                let hit = c.access(r, &key);
                let model_hit = model.contains(&key);
                assert_eq!(hit, model_hit);
                if model_hit {
                    model.retain(|k| k != &key);
                    model.insert(0, key);
                }
            } else {
                c.insert(r, key.clone());
                model.retain(|k| k != &key);
                model.insert(0, key);
                if model.len() > 50 {
                    model.pop();
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
