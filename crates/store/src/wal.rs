//! The per-server write-ahead log, with synchronous and asynchronous
//! persistence modes, and WAL splitting for recovery.
//!
//! The paper's asynchronous-persistence design (§2.2) hinges on this
//! component: "upon receiving an update, the HBase server first appends it
//! to its (in-memory) write-ahead log buffer, then applies it to the
//! memstore, and then immediately returns to the client. Shortly
//! thereafter (i.e., asynchronously), we sync the write-ahead log buffer
//! to HDFS." A server crash loses whatever sat in the buffer — those are
//! precisely the write-sets the recovery manager replays from the
//! transaction manager's log.

use crate::codec::{decode_wal_batch, encode_wal_batch, WalRecord};
use crate::types::RegionId;
use cumulo_dfs::{DfsClient, DfsFile};
use cumulo_sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// When WAL appends become durable relative to the client's ack.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WalSyncMode {
    /// Every update is synced to the filesystem before the server
    /// acknowledges it (HBase's default; the paper's baseline).
    Sync,
    /// Updates are acknowledged from the in-memory buffer; a background
    /// task syncs the buffer shortly after (the paper's design, enabled by
    /// the transaction manager owning durability).
    Async,
}

struct WalInner {
    path: String,
    file: Option<DfsFile>,
    /// Records appended but not yet part of any DFS append.
    buffer: Vec<WalRecord>,
    buffer_bytes: usize,
    next_seq: u64,
    synced_seq: u64,
    sync_inflight: bool,
    /// Callbacks waiting for `synced_seq >= .0`.
    waiters: Vec<(u64, Box<dyn FnOnce()>)>,
    appends: u64,
    syncs: u64,
    synced_bytes: u64,
    failed: bool,
}

/// A region server's write-ahead log.
///
/// Appends are cheap in-memory buffer pushes returning a sequence number;
/// [`Wal::sync`] (or [`Wal::sync_upto`]) makes everything appended so far
/// durable in the DFS. Appends within one sync batch are encoded as a
/// single DFS record, which is the group-commit effect that makes
/// asynchronous mode cheap.
#[derive(Clone)]
pub struct Wal {
    sim: Sim,
    inner: Rc<RefCell<WalInner>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Wal")
            .field("path", &inner.path)
            .field("next_seq", &inner.next_seq)
            .field("synced_seq", &inner.synced_seq)
            .field("buffered", &inner.buffer.len())
            .finish()
    }
}

impl Wal {
    /// Creates the log, asynchronously creating its backing DFS file at
    /// `path`. Appends may begin immediately; they buffer until the file
    /// is ready.
    pub fn new(sim: &Sim, dfs: &DfsClient, path: impl Into<String>) -> Wal {
        let path = path.into();
        let wal = Wal {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(WalInner {
                path: path.clone(),
                file: None,
                buffer: Vec::new(),
                buffer_bytes: 0,
                next_seq: 1,
                synced_seq: 0,
                sync_inflight: false,
                waiters: Vec::new(),
                appends: 0,
                syncs: 0,
                synced_bytes: 0,
                failed: false,
            })),
        };
        let inner = Rc::clone(&wal.inner);
        let sim2 = sim.clone();
        dfs.create(&path, move |file| match file {
            Ok(file) => {
                inner.borrow_mut().file = Some(file);
                Wal { sim: sim2, inner }.maybe_start_sync();
            }
            Err(e) => {
                // Unrecoverable: no datanodes. Mark failed so syncs error
                // loudly in tests rather than hanging.
                inner.borrow_mut().failed = true;
                panic!("WAL file creation failed: {e}");
            }
        });
        wal
    }

    /// Appends a record to the in-memory buffer, returning its sequence
    /// number. Not durable until a sync covers the sequence.
    pub fn append(&self, record: WalRecord) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.appends += 1;
        inner.buffer_bytes += record.wire_size();
        inner.buffer.push(record);
        seq
    }

    /// Makes everything appended so far durable; `done` runs at the
    /// durability point.
    pub fn sync(&self, done: impl FnOnce() + 'static) {
        let upto = self.inner.borrow().next_seq - 1;
        self.sync_upto(upto, done);
    }

    /// Makes all records with sequence ≤ `seq` durable; `done` runs once
    /// `synced_seq >= seq`.
    pub fn sync_upto(&self, seq: u64, done: impl FnOnce() + 'static) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.synced_seq >= seq {
                drop(inner);
                self.sim.schedule_in(SimDuration::ZERO, done);
                return;
            }
            inner.waiters.push((seq, Box::new(done)));
        }
        self.maybe_start_sync();
    }

    /// Highest durable sequence number.
    pub fn synced_seq(&self) -> u64 {
        self.inner.borrow().synced_seq
    }

    /// Sequence number of the most recent append (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.inner.borrow().next_seq - 1
    }

    /// Records buffered in memory, not yet durable.
    pub fn unsynced_len(&self) -> usize {
        self.inner.borrow().buffer.len()
    }

    /// Total appends accepted.
    pub fn append_count(&self) -> u64 {
        self.inner.borrow().appends
    }

    /// Total sync batches written to the filesystem.
    pub fn sync_count(&self) -> u64 {
        self.inner.borrow().syncs
    }

    /// Total bytes made durable.
    pub fn synced_bytes(&self) -> u64 {
        self.inner.borrow().synced_bytes
    }

    /// The DFS path of the log.
    pub fn path(&self) -> String {
        self.inner.borrow().path.clone()
    }

    fn maybe_start_sync(&self) {
        let (file, batch, batch_hi, bytes) = {
            let mut inner = self.inner.borrow_mut();
            if inner.sync_inflight || inner.buffer.is_empty() || inner.file.is_none() {
                return;
            }
            inner.sync_inflight = true;
            let batch = std::mem::take(&mut inner.buffer);
            let bytes = std::mem::replace(&mut inner.buffer_bytes, 0);
            let batch_hi = inner.next_seq - 1;
            (
                inner.file.clone().expect("checked above"),
                batch,
                batch_hi,
                bytes,
            )
        };
        let encoded = encode_wal_batch(&batch);
        let this = self.clone();
        file.append(encoded, move |result| match result {
            Ok(()) => {
                {
                    let mut inner = this.inner.borrow_mut();
                    inner.sync_inflight = false;
                    inner.synced_seq = inner.synced_seq.max(batch_hi);
                    inner.syncs += 1;
                    inner.synced_bytes += bytes as u64;
                }
                this.fire_waiters();
                this.maybe_start_sync();
            }
            Err(_) => {
                // All replicas down: requeue the batch at the front and
                // retry shortly; durability is not given up silently.
                {
                    let mut inner = this.inner.borrow_mut();
                    inner.sync_inflight = false;
                    inner.buffer_bytes += bytes;
                    let mut requeued = batch;
                    requeued.append(&mut inner.buffer);
                    inner.buffer = requeued;
                }
                let retry = this.clone();
                this.sim
                    .schedule_in(SimDuration::from_millis(100), move || {
                        retry.maybe_start_sync();
                    });
            }
        });
    }

    fn fire_waiters(&self) {
        let ready: Vec<Box<dyn FnOnce()>> = {
            let mut inner = self.inner.borrow_mut();
            let synced = inner.synced_seq;
            let mut ready = Vec::new();
            let mut keep = Vec::new();
            for (seq, cb) in inner.waiters.drain(..) {
                if seq <= synced {
                    ready.push(cb);
                } else {
                    keep.push((seq, cb));
                }
            }
            inner.waiters = keep;
            ready
        };
        for cb in ready {
            cb();
        }
    }
}

/// Reads a failed server's WAL from the filesystem and groups its records
/// by region — the first step of HBase's recovery procedure (§2.1).
///
/// `done` receives an empty map if the WAL file does not exist (the server
/// never synced anything).
pub fn split_wal(
    dfs: &DfsClient,
    wal_path: &str,
    done: impl FnOnce(HashMap<RegionId, Vec<WalRecord>>) + 'static,
) {
    dfs.read(wal_path, move |data| {
        let mut grouped: HashMap<RegionId, Vec<WalRecord>> = HashMap::new();
        if let Ok(batches) = data {
            for batch in batches {
                match decode_wal_batch(&batch) {
                    Ok(records) => {
                        for r in records {
                            grouped.entry(r.region).or_default().push(r);
                        }
                    }
                    Err(_) => {
                        // A torn final batch (crash mid-append) is ignored:
                        // it was never acknowledged as durable.
                    }
                }
            }
        }
        done(grouped);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Mutation, Timestamp};
    use cumulo_dfs::{DataNode, NameNode, NameNodeConfig};
    use cumulo_sim::{DiskConfig, LatencyConfig, Network, NodeId, SimTime};
    use std::cell::Cell;

    fn setup() -> (Sim, Rc<Network>, DfsClient, NodeId) {
        let sim = Sim::new(5);
        let net = Network::new(&sim, LatencyConfig::lan_100mbps());
        let dns: Vec<Rc<DataNode>> = (0..2)
            .map(|i| {
                DataNode::new(
                    &sim,
                    net.add_node(&format!("dn{i}")),
                    DiskConfig::server_hdd(),
                )
            })
            .collect();
        let nn = NameNode::new(
            &sim,
            &net,
            net.add_node("nn"),
            dns,
            NameNodeConfig::default(),
        );
        let server = net.add_node("rs");
        let dfs = DfsClient::new(&sim, &net, &nn, server);
        (sim, net, dfs, server)
    }

    fn rec(region: u32, ts: u64) -> WalRecord {
        WalRecord {
            region: RegionId(region),
            ts: Timestamp(ts),
            mutations: vec![Mutation::put(format!("row{ts}"), "c", format!("v{ts}"))],
        }
    }

    #[test]
    fn sync_makes_appends_durable_in_order() {
        let (sim, _net, dfs, _) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        for i in 1..=5 {
            let seq = wal.append(rec(0, i));
            assert_eq!(seq, i);
        }
        let synced = Rc::new(Cell::new(false));
        let s2 = synced.clone();
        wal.sync(move || s2.set(true));
        sim.run_until(SimTime::from_secs(1));
        assert!(synced.get());
        assert_eq!(wal.synced_seq(), 5);
        assert_eq!(wal.unsynced_len(), 0);
        assert!(wal.sync_count() >= 1);
        assert!(wal.synced_bytes() > 0);

        // Verify the records round-trip through split_wal.
        let got: Rc<RefCell<Option<HashMap<RegionId, Vec<WalRecord>>>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        split_wal(&dfs, "/wal/rs0", move |m| *g.borrow_mut() = Some(m));
        sim.run_until(SimTime::from_secs(2));
        let grouped = got.borrow_mut().take().unwrap();
        assert_eq!(grouped[&RegionId(0)].len(), 5);
        assert_eq!(grouped[&RegionId(0)][0].ts, Timestamp(1));
        assert_eq!(grouped[&RegionId(0)][4].ts, Timestamp(5));
    }

    #[test]
    fn sync_upto_only_waits_for_prefix() {
        let (sim, _net, dfs, _) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        let s1 = wal.append(rec(0, 1));
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        wal.sync_upto(s1, move || f.set(true));
        sim.run_until(SimTime::from_secs(1));
        assert!(fired.get());
        // Subsequent appends are not yet durable.
        wal.append(rec(0, 2));
        assert_eq!(wal.synced_seq(), 1);
        assert_eq!(wal.unsynced_len(), 1);
    }

    #[test]
    fn already_synced_callback_fires_immediately() {
        let (sim, _net, dfs, _) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        wal.sync_upto(0, move || f.set(true)); // nothing appended yet
        sim.run_until(SimTime::from_millis(1));
        assert!(fired.get());
    }

    #[test]
    fn group_commit_batches_appends() {
        let (sim, _net, dfs, _) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        sim.run_until(SimTime::from_millis(100)); // let the file open
        for i in 1..=100 {
            wal.append(rec(0, i));
        }
        wal.sync(|| {});
        sim.run_until(SimTime::from_secs(2));
        // 100 records, but at most a couple of DFS appends (one batch was
        // cut when the first sync started, the rest ride the next batch).
        assert!(
            wal.sync_count() <= 3,
            "expected batched syncs, got {}",
            wal.sync_count()
        );
        assert_eq!(wal.synced_seq(), 100);
    }

    #[test]
    fn unsynced_buffer_is_lost_but_synced_part_survives() {
        let (sim, net, dfs, server) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        wal.append(rec(0, 1));
        wal.append(rec(0, 2));
        wal.sync(|| {});
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(wal.synced_seq(), 2);
        // Two more appends that never sync before the server dies.
        wal.append(rec(0, 3));
        wal.append(rec(0, 4));
        net.crash(server);
        // Recovery reads what the filesystem has.
        let reader = DfsClient::new(&sim, &net, dfs.namenode(), net.add_node("master"));
        let got: Rc<RefCell<Option<HashMap<RegionId, Vec<WalRecord>>>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        split_wal(&reader, "/wal/rs0", move |m| *g.borrow_mut() = Some(m));
        sim.run_until(SimTime::from_secs(2));
        let grouped = got.borrow_mut().take().unwrap();
        assert_eq!(
            grouped[&RegionId(0)].len(),
            2,
            "only the synced prefix survives"
        );
    }

    #[test]
    fn split_groups_by_region() {
        let (sim, _net, dfs, _) = setup();
        let wal = Wal::new(&sim, &dfs, "/wal/rs0");
        wal.append(rec(0, 1));
        wal.append(rec(1, 2));
        wal.append(rec(0, 3));
        wal.append(rec(2, 4));
        wal.sync(|| {});
        sim.run_until(SimTime::from_secs(1));
        let got: Rc<RefCell<Option<HashMap<RegionId, Vec<WalRecord>>>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        split_wal(&dfs, "/wal/rs0", move |m| *g.borrow_mut() = Some(m));
        sim.run_until(SimTime::from_secs(2));
        let grouped = got.borrow_mut().take().unwrap();
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[&RegionId(0)].len(), 2);
        assert_eq!(grouped[&RegionId(1)].len(), 1);
        assert_eq!(grouped[&RegionId(2)].len(), 1);
    }

    #[test]
    fn split_missing_wal_returns_empty() {
        let (sim, _net, dfs, _) = setup();
        let got: Rc<RefCell<Option<HashMap<RegionId, Vec<WalRecord>>>>> =
            Rc::new(RefCell::new(None));
        let g = got.clone();
        split_wal(&dfs, "/wal/ghost", move |m| *g.borrow_mut() = Some(m));
        sim.run_until(SimTime::from_secs(1));
        assert!(got.borrow_mut().take().unwrap().is_empty());
    }
}
