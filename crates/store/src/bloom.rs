//! Deterministic per-store-file bloom filters over `(row, column)` pairs.
//!
//! Every store file carries a bloom filter built at flush (or compaction)
//! time; the point-get read path probes it before charging the file's
//! read-amplification service term, so a get only pays for files that can
//! plausibly contain the key (see `server.rs` for the service model).
//!
//! ## Determinism
//!
//! Cross-process determinism is a repo invariant: the same seed must
//! produce byte-identical runs on any host. The filter therefore uses a
//! fixed-seed FNV-1a hash pair with double hashing — **no
//! `RandomState`**, no per-process salts — so the same entry set always
//! produces the same bit pattern, and an encode/decode round trip through
//! the distributed filesystem is exact.
//!
//! ## Sizing
//!
//! [`BITS_PER_KEY`] = 10 and [`NUM_PROBES`] = 7 give a theoretical false
//! positive rate of ~0.8–1% (the classic `(1 - e^{-kn/m})^k` bound), and
//! ≤ ~2% in practice with double hashing — cheap insurance at 1.25 bytes
//! per distinct `(row, column)` pair.

use crate::codec::{DecodeError, Decoder, Encoder};
use std::fmt;

/// Filter bits allocated per distinct `(row, column)` key.
pub const BITS_PER_KEY: usize = 10;

/// Probes (hash functions) per lookup, near-optimal for 10 bits/key.
pub const NUM_PROBES: u32 = 7;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeds for the two independent FNV-1a streams that drive the double
/// hashing scheme. Fixed constants: determinism is an invariant.
const SEED_H1: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_H2: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Seeded FNV-1a over the length-prefixed `(row, column)` pair. The
/// length prefix keeps `("ab", "c")` and `("a", "bc")` distinct.
fn fnv1a(seed: u64, row: &[u8], column: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for b in (row.len() as u32).to_be_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in row {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in column {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A fixed-size bloom filter over `(row, column)` pairs.
///
/// Built once (store files are immutable), probed on every point get.
/// An empty filter (zero keys) rejects everything.
///
/// # Example
///
/// ```
/// use cumulo_store::bloom::BloomFilter;
///
/// let filter = BloomFilter::build([(b"row1".as_ref(), b"c".as_ref())]);
/// assert!(filter.may_contain(b"row1", b"c"));
/// assert!(!filter.may_contain(b"row2", b"c"));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    /// Bit array in 64-bit words; `words.len() * 64` addressable bits.
    words: Box<[u64]>,
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &(self.words.len() * 64))
            .field("bytes", &self.approx_bytes())
            .finish()
    }
}

impl BloomFilter {
    /// Builds a filter sized for (and containing) the given keys.
    pub fn build<'a, I>(keys: I) -> BloomFilter
    where
        I: IntoIterator<Item = (&'a [u8], &'a [u8])>,
    {
        let keys: Vec<(&[u8], &[u8])> = keys.into_iter().collect();
        if keys.is_empty() {
            return BloomFilter {
                words: Box::default(),
            };
        }
        let bits = (keys.len() * BITS_PER_KEY).max(64);
        let words = vec![0u64; bits.div_ceil(64)];
        let mut filter = BloomFilter {
            words: words.into_boxed_slice(),
        };
        for (row, column) in keys {
            filter.insert(row, column);
        }
        filter
    }

    fn insert(&mut self, row: &[u8], column: &[u8]) {
        let nbits = (self.words.len() * 64) as u64;
        let h1 = fnv1a(SEED_H1, row, column);
        // Force the stride odd so it never degenerates to probing one bit.
        let h2 = fnv1a(SEED_H2, row, column) | 1;
        for i in 0..NUM_PROBES as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether the filter may contain `(row, column)`. `false` is
    /// definitive (the pair was never inserted); `true` may be a false
    /// positive.
    pub fn may_contain(&self, row: &[u8], column: &[u8]) -> bool {
        if self.words.is_empty() {
            return false;
        }
        let nbits = (self.words.len() * 64) as u64;
        let h1 = fnv1a(SEED_H1, row, column);
        let h2 = fnv1a(SEED_H2, row, column) | 1;
        for i in 0..NUM_PROBES as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            if self.words[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// In-memory (and on-disk) size of the bit array in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Serializes the filter (word count, then the words).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.words.len() as u32);
        for w in self.words.iter() {
            enc.put_u64(*w);
        }
    }

    /// Parses a filter previously produced by [`BloomFilter::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<BloomFilter, DecodeError> {
        let n = dec.get_u32()? as usize;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(dec.get_u64()?);
        }
        Ok(BloomFilter {
            words: words.into_boxed_slice(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("row{i:08}").into_bytes(),
                    format!("c{}", i % 4).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let keys = pairs(5_000);
        let filter = BloomFilter::build(keys.iter().map(|(r, c)| (&r[..], &c[..])));
        for (r, c) in &keys {
            assert!(filter.may_contain(r, c));
        }
    }

    #[test]
    fn false_positive_rate_within_budget() {
        let keys = pairs(10_000);
        let filter = BloomFilter::build(keys.iter().map(|(r, c)| (&r[..], &c[..])));
        let mut fp = 0u32;
        let trials = 20_000u32;
        for i in 0..trials {
            if filter.may_contain(format!("absent{i:08}").as_bytes(), b"c0") {
                fp += 1;
            }
        }
        let rate = fp as f64 / trials as f64;
        assert!(rate <= 0.02, "false positive rate {rate} above 2%");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let filter = BloomFilter::build(std::iter::empty());
        assert!(!filter.may_contain(b"r", b"c"));
        assert_eq!(filter.approx_bytes(), 0);
    }

    #[test]
    fn length_prefix_separates_row_and_column() {
        let filter = BloomFilter::build([(b"ab".as_ref(), b"c".as_ref())]);
        // Same concatenation, different split: overwhelmingly unlikely to
        // collide thanks to the length prefix.
        assert!(!filter.may_contain(b"a", b"bc"));
    }

    #[test]
    fn encode_decode_is_exact() {
        let keys = pairs(1_000);
        let filter = BloomFilter::build(keys.iter().map(|(r, c)| (&r[..], &c[..])));
        let mut enc = Encoder::new();
        filter.encode(&mut enc);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        let back = BloomFilter::decode(&mut dec).expect("decode");
        assert_eq!(back, filter);
        assert!(dec.is_at_end());
        // Truncated input errors out instead of panicking.
        let mut dec = Decoder::new(&buf[..buf.len() - 3]);
        assert!(BloomFilter::decode(&mut dec).is_err());
    }

    #[test]
    fn build_is_deterministic() {
        let keys = pairs(500);
        let a = BloomFilter::build(keys.iter().map(|(r, c)| (&r[..], &c[..])));
        let b = BloomFilter::build(keys.iter().map(|(r, c)| (&r[..], &c[..])));
        assert_eq!(a, b);
    }
}
