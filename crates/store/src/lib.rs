//! HBase-like distributed key-value store substrate.
//!
//! This crate reproduces the parts of HBase the paper's recovery
//! middleware interacts with (§2.1):
//!
//! * a table partitioned into **regions** (contiguous key ranges), each
//!   hosted by one **region server**;
//! * per-region in-memory **memstores** holding recent updates, flushed in
//!   batches to immutable **store files** in the distributed filesystem;
//! * a per-server **write-ahead log** whose synchronous flush can be
//!   *deactivated* — the paper's asynchronous-persistence mode, where a
//!   server ack does not imply durability;
//! * a **block cache** whose cold-start after failover produces the slow
//!   return to peak throughput in the paper's Fig. 3;
//! * a **master** that detects server failures through the coordination
//!   service, splits the failed server's WAL by region, and reassigns
//!   regions to surviving servers — with the paper's two recovery hooks
//!   (failure notification, and gating a recovered region's online
//!   declaration on the recovery manager's response);
//! * a **store client** with location caching and, per §3.2 of the paper,
//!   *unbounded* retries.
//!
//! The transactional layers live above: `cumulo-txn` (transaction manager)
//! and `cumulo-core` (the failure-recovery middleware, the paper's
//! contribution).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blockcache;
mod client;
pub mod codec;
mod error;
mod hooks;
mod master;
mod memstore;
mod region;
mod server;
mod sstable;
mod types;
mod wal;

pub use blockcache::BlockCache;
pub use client::{StoreClient, StoreClientConfig};
pub use codec::WalRecord;
pub use error::StoreError;
pub use hooks::{NoopHooks, RecoveryHooks};
pub use master::{Master, MasterConfig, ServerDirectory};
pub use memstore::{MemStore, VersionedValue};
pub use region::{RegionDescriptor, RegionMap};
pub use server::{RegionServer, RegionServerConfig};
pub use sstable::{StoreFileData, StoreFileRegistry};
pub use types::{ClientId, Mutation, MutationKind, RegionId, ServerId, Timestamp, WriteSet};
pub use wal::{split_wal, Wal, WalSyncMode};
