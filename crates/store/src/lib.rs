//! HBase-like distributed key-value store substrate.
//!
//! This crate reproduces the parts of HBase the paper's recovery
//! middleware interacts with (§2.1):
//!
//! * a table partitioned into **regions** (contiguous key ranges), each
//!   hosted by one **region server** — with **online splits**: a hot
//!   region is atomically replaced by two daughters whose store-file
//!   sets are O(metadata) reference half-files over the parent's files
//!   (see ARCHITECTURE.md, "Online region splits");
//! * per-region in-memory **memstores** holding recent updates, flushed in
//!   batches to immutable **store files** in the distributed filesystem;
//! * a per-server **write-ahead log** whose synchronous flush can be
//!   *deactivated* — the paper's asynchronous-persistence mode, where a
//!   server ack does not imply durability;
//! * a **block cache** whose cold-start after failover produces the slow
//!   return to peak throughput in the paper's Fig. 3;
//! * a **master** that detects server failures through the coordination
//!   service, splits the failed server's WAL by region, and reassigns
//!   regions to surviving servers — with the paper's two recovery hooks
//!   (failure notification, and gating a recovered region's online
//!   declaration on the recovery manager's response);
//! * a **store client** with location caching and, per §3.2 of the paper,
//!   *unbounded* retries.
//!
//! The transactional layers live above: `cumulo-txn` (transaction manager)
//! and `cumulo-core` (the failure-recovery middleware, the paper's
//! contribution).
//!
//! # The LSM lifecycle
//!
//! A cell's value travels through the classic log-structured-merge
//! stages, each handing durability or serving duty to the next:
//!
//! 1. **WAL append** — every mutation is first buffered into the server's
//!    write-ahead log ([`Wal`]); in synchronous mode the ack waits for
//!    the filesystem, in the paper's asynchronous mode it does not.
//! 2. **Memstore apply** — the mutation lands in the region's in-memory,
//!    MVCC-versioned [`MemStore`] and is immediately readable.
//! 3. **Flush** — when a memstore exceeds its size threshold, its
//!    contents are snapshotted and written to the distributed filesystem
//!    as a sorted, immutable **store file** ([`StoreFileData`]) carrying
//!    min/max row-key range metadata and a deterministic per-file
//!    [`bloom`] filter over its `(row, column)` pairs; the WAL entries it
//!    covers become dead weight and recovered-edits files are deleted.
//!    Point gets consult only files whose range covers the key *and*
//!    whose filter matches ([`FilterStats`] counts probes, skips and
//!    false positives); scans prune by range only.
//! 4. **Compaction** — flushes accumulate store files, and every read
//!    must consult all of them (*read amplification*). The background
//!    [`compaction`] stage merges a policy-chosen candidate set back
//!    down, crash-safely (temp-name writes, atomic renames, then input
//!    retirement). Two [`CompactionPolicy`] implementations ship:
//!    size-tiered (merge similar sizes, overlapping files) and leveled
//!    (L0 flush tier + key-range-disjoint deeper levels).
//! 5. **MVCC garbage collection** — during the merge, versions shadowed
//!    at or below the transaction manager's *oldest active snapshot* are
//!    dropped, and a major compaction also purges tombstones that no
//!    longer shadow anything. Disk usage and read cost stay proportional
//!    to live data, not to write history.
//!
//! # Compaction tuning
//!
//! All knobs live on [`CompactionConfig`] (per cluster via
//! `cumulo-core`'s `ClusterConfig`, switchable at runtime through
//! `RegionServer::set_compaction_policy` / `Cluster`'s mirror):
//!
//! * **Policy choice** ([`CompactionPolicyKind`]): pick *size-tiered*
//!   for write-heavy workloads where rewrite cost dominates and point
//!   reads are covered by bloom filters; pick *leveled* when scans
//!   matter (filters cannot prune for them — only the disjoint layout
//!   bounds overlap) or when a hard files-consulted-per-get bound
//!   (≈ level count) is worth extra write amplification. The
//!   `policy_compare` bench measures the trade on this very codebase.
//! * **Thresholds**: `min_files` is the size-tiered candidacy floor and
//!   the leveled L0→L1 trigger; `level_base_bytes` × `level_ratio^(L-1)`
//!   budgets level `L`; `level_file_bytes` sizes the disjoint run files
//!   (smaller files → finer-grained future merges, more of them).
//! * **Backpressure** (`backpressure`, on by default): the deficit
//!   scheduler defers due merges while windowed handler utilization
//!   exceeds `utilization_threshold`, forcing them after
//!   `max_deferrals` ticks; past `stall_file_limit` (total files for
//!   size-tiered, L0 files for leveled) memstore flushes stall. Lower
//!   the threshold to favor foreground p99 in bursty workloads; raise
//!   `max_deferrals` only with filters on, since deferral grows the
//!   consulted-file count for overwritten keys.
//! * **Pacing**: `check_interval` bounds merge admission to one region
//!   per server per tick; `merge_service_per_entry` is the modeled CPU
//!   a merge charges against the shared handler slots.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blockcache;
pub mod bloom;
mod client;
pub mod codec;
pub mod compaction;
mod error;
mod hooks;
mod master;
mod memstore;
mod region;
mod server;
mod sstable;
mod types;
mod wal;

pub use blockcache::BlockCache;
pub use client::{StoreClient, StoreClientConfig};
pub use codec::WalRecord;
pub use compaction::{
    CompactionConfig, CompactionPolicy, CompactionPolicyKind, CompactionStats, LeveledPolicy,
    SizeTieredPolicy,
};
pub use error::StoreError;
pub use hooks::{NoopHooks, RecoveryHooks, ReplicationCoordinator, SplitCoordinator};
pub use master::{Master, MasterConfig, MoveConfig, ServerDirectory};
pub use memstore::{MemStore, VersionedValue};
pub use region::{MergeIntent, RegionDescriptor, RegionMap, SplitIntent};
pub use server::{
    FilterStats, MemstoreSnapshot, RegionServer, RegionServerConfig, ReplAck, ReplicationConfig,
    ReplicationStats, ScanPage, SplitConfig, SplitStats,
};
pub use sstable::{StoreFileData, StoreFileEntry, StoreFileRegistry};
pub use types::{ClientId, Mutation, MutationKind, RegionId, ServerId, Timestamp, WriteSet};
pub use wal::{split_wal, Wal, WalSyncMode};
