//! The master: region assignment, server-failure detection via the
//! coordination service, WAL splitting and region reassignment.

use crate::hooks::{NoopHooks, RecoveryHooks};
use crate::region::{RegionDescriptor, RegionMap};
use crate::server::RegionServer;
use crate::types::{RegionId, ServerId};
use crate::wal::split_wal;
use cumulo_coord::CoordClient;
use cumulo_dfs::DfsClient;
use cumulo_sim::{every, Network, NodeId, Sim, SimDuration, TimerHandle};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::rc::{Rc, Weak};

/// Registry resolving [`ServerId`]s to live process handles, shared by the
/// master and the store clients (it plays the role of connection strings /
/// RPC stubs in a real deployment).
#[derive(Default)]
pub struct ServerDirectory {
    servers: RefCell<BTreeMap<ServerId, Rc<RegionServer>>>,
}

impl fmt::Debug for ServerDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerDirectory")
            .field("servers", &self.servers.borrow().len())
            .finish()
    }
}

impl ServerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Rc<ServerDirectory> {
        Rc::new(ServerDirectory::default())
    }

    /// Registers a server.
    pub fn register(&self, server: Rc<RegionServer>) {
        self.servers.borrow_mut().insert(server.id(), server);
    }

    /// Resolves a server handle.
    pub fn get(&self, id: ServerId) -> Option<Rc<RegionServer>> {
        self.servers.borrow().get(&id).cloned()
    }

    /// All registered server ids, in order.
    pub fn ids(&self) -> Vec<ServerId> {
        self.servers.borrow().keys().copied().collect()
    }

    /// Ids of servers whose process is currently alive.
    pub fn live_ids(&self) -> Vec<ServerId> {
        self.servers
            .borrow()
            .iter()
            .filter(|(_, s)| s.is_alive())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Master tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct MasterConfig {
    /// Retry period for regions that could not be placed (no live server).
    pub assign_retry_interval: SimDuration,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            assign_retry_interval: SimDuration::from_secs(1),
        }
    }
}

/// The cluster master. Shared via `Rc`.
pub struct Master {
    sim: Sim,
    net: Rc<Network>,
    node: NodeId,
    cfg: MasterConfig,
    dfs: DfsClient,
    dir: Rc<ServerDirectory>,
    region_map: RefCell<RegionMap>,
    hooks: RefCell<Rc<dyn RecoveryHooks>>,
    handled_failures: RefCell<HashSet<ServerId>>,
    /// Regions awaiting placement (no live server was available), with
    /// their pending recovered edits and failed-server attribution.
    unplaced: RefCell<Vec<(RegionId, Vec<crate::codec::WalRecord>, Option<ServerId>)>>,
    edits_counter: Cell<u64>,
    failovers: Cell<u64>,
    timers: RefCell<Vec<TimerHandle>>,
    self_weak: RefCell<Weak<Master>>,
}

impl fmt::Debug for Master {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Master")
            .field("node", &self.node)
            .field("failovers", &self.failovers.get())
            .field("map", &*self.region_map.borrow())
            .finish()
    }
}

impl Master {
    /// Creates the master on `node`; `dfs` must be bound to the same node.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        node: NodeId,
        cfg: MasterConfig,
        dfs: DfsClient,
        dir: Rc<ServerDirectory>,
    ) -> Rc<Master> {
        let master = Rc::new(Master {
            sim: sim.clone(),
            net: Rc::clone(net),
            node,
            cfg,
            dfs,
            dir,
            region_map: RefCell::new(RegionMap::default()),
            hooks: RefCell::new(Rc::new(NoopHooks)),
            handled_failures: RefCell::new(HashSet::new()),
            unplaced: RefCell::new(Vec::new()),
            edits_counter: Cell::new(0),
            failovers: Cell::new(0),
            timers: RefCell::new(Vec::new()),
            self_weak: RefCell::new(Weak::new()),
        });
        *master.self_weak.borrow_mut() = Rc::downgrade(&master);
        master
    }

    /// The machine the master runs on (RPC destination for clients).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the recovery middleware's hooks (also propagated to every
    /// registered server).
    pub fn set_hooks(&self, hooks: Rc<dyn RecoveryHooks>) {
        for id in self.dir.ids() {
            if let Some(s) = self.dir.get(id) {
                s.set_hooks(Rc::clone(&hooks));
            }
        }
        *self.hooks.borrow_mut() = hooks;
    }

    /// Starts failure detection (a watch on the servers' liveness znodes)
    /// and the unplaced-region retry timer.
    pub fn start(self: &Rc<Self>, coord: &CoordClient) {
        let weak = Rc::downgrade(self);
        coord.watch_prefix(
            "/live/servers/",
            move |event| {
                if let cumulo_coord::WatchEvent::Deleted(path) = event {
                    if let Some(master) = weak.upgrade() {
                        if let Some(id) = parse_server_path(&path) {
                            master.handle_server_failure(id);
                        }
                    }
                }
            },
            |_| {},
        );
        let weak = Rc::downgrade(self);
        let timer = every(&self.sim, self.cfg.assign_retry_interval, move || {
            if let Some(master) = weak.upgrade() {
                master.retry_unplaced();
            }
        });
        self.timers.borrow_mut().push(timer);
    }

    /// Assigns every region of `map` round-robin across the registered
    /// servers and opens them (cluster bootstrap).
    pub fn bootstrap(self: &Rc<Self>, map: RegionMap) {
        *self.region_map.borrow_mut() = map;
        let descs: Vec<RegionDescriptor> = self.region_map.borrow().regions().to_vec();
        let servers = self.dir.ids();
        assert!(
            !servers.is_empty(),
            "bootstrap requires at least one registered server"
        );
        for (i, desc) in descs.into_iter().enumerate() {
            let target = servers[i % servers.len()];
            self.region_map.borrow_mut().assign(desc.id, target);
            let server = self.dir.get(target).expect("registered");
            let node = server.node();
            self.net.send(self.node, node, 256, move || {
                server.open_region(desc, Vec::new(), Vec::new(), None);
            });
        }
    }

    /// A snapshot of the region map for client caches.
    pub fn snapshot_map(&self) -> RegionMap {
        self.region_map.borrow().clone()
    }

    /// Current map epoch (bumps on each assignment change).
    pub fn map_epoch(&self) -> u64 {
        self.region_map.borrow().epoch()
    }

    /// Number of server failovers processed.
    pub fn failover_count(&self) -> u64 {
        self.failovers.get()
    }

    /// Handles a detected server failure: marks its regions offline,
    /// notifies the recovery hooks, splits the failed server's WAL and
    /// reassigns each region with its recovered edits (§2.1 + §3.2).
    ///
    /// Idempotent per server id.
    pub fn handle_server_failure(self: &Rc<Self>, failed: ServerId) {
        if !self.handled_failures.borrow_mut().insert(failed) {
            return;
        }
        self.failovers.set(self.failovers.get() + 1);
        let regions = self.region_map.borrow().regions_of(failed);
        {
            let mut map = self.region_map.borrow_mut();
            for r in &regions {
                map.unassign(*r);
            }
        }
        self.hooks.borrow().on_server_failed(failed, &regions);
        if regions.is_empty() {
            return;
        }
        let weak = Rc::downgrade(self);
        split_wal(&self.dfs, &format!("/wal/{failed}"), move |mut grouped| {
            let Some(master) = weak.upgrade() else { return };
            for region in regions {
                let records = grouped.remove(&region).unwrap_or_default();
                master.place_region(region, records, Some(failed));
            }
        });
    }

    /// Places a region on the live server hosting the fewest regions;
    /// queues it for retry if no server is alive.
    ///
    /// Split WAL records are first persisted as a *recovered-edits file*
    /// in the filesystem (as HBase does), so that a cascading failure of
    /// the new host cannot lose them: the next recovery round re-reads
    /// them. The file is deleted once the region's memstore flushes.
    fn place_region(
        self: &Rc<Self>,
        region: RegionId,
        records: Vec<crate::codec::WalRecord>,
        failed: Option<ServerId>,
    ) {
        if records.is_empty() {
            self.place_region_with_edits(region, failed);
            return;
        }
        let n = self.edits_counter.get();
        self.edits_counter.set(n + 1);
        let path = format!("/recovered/{region}/{n:06}");
        let encoded = crate::codec::encode_wal_batch(&records);
        let weak = self.self_weak.borrow().clone();
        self.dfs.create(&path, move |file| {
            let Ok(file) = file else {
                // Already exists should be impossible (unique counter);
                // a failed create means no datanodes — retry via queue.
                if let Some(master) = weak.upgrade() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                }
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                    return;
                }
                master.place_region_with_edits(region, failed);
            });
        });
    }

    /// Second placement phase: recovered edits (if any) are durable in the
    /// filesystem; choose a host and open the region there.
    fn place_region_with_edits(self: &Rc<Self>, region: RegionId, failed: Option<ServerId>) {
        let target = {
            let map = self.region_map.borrow();
            let mut live: Vec<(usize, ServerId)> = self
                .dir
                .live_ids()
                .into_iter()
                .map(|id| (map.regions_of(id).len(), id))
                .collect();
            live.sort();
            live.first().map(|(_, id)| *id)
        };
        let Some(target) = target else {
            self.unplaced
                .borrow_mut()
                .push((region, Vec::new(), failed));
            return;
        };
        let desc = self
            .region_map
            .borrow()
            .descriptor(region)
            .expect("region exists in the map")
            .clone();
        self.region_map.borrow_mut().assign(region, target);
        let server = self.dir.get(target).expect("registered");
        let node = server.node();
        let dfs = self.dfs.clone();
        let net = Rc::clone(&self.net);
        let master_node = self.node;
        // Resolve the region's store files and recovered-edits files from
        // the filesystem namespace (the equivalent of listing the
        // region's HDFS directories).
        dfs.clone()
            .list(&format!("/store/{region}/"), move |paths| {
                dfs.list(&format!("/recovered/{region}/"), move |edits| {
                    net.send(master_node, node, 512, move || {
                        server.open_region(desc, paths, edits, failed);
                    });
                });
            });
    }

    fn retry_unplaced(self: &Rc<Self>) {
        let pending: Vec<_> = self.unplaced.borrow_mut().drain(..).collect();
        for (region, records, failed) in pending {
            self.place_region(region, records, failed);
        }
    }

    /// Client RPC: current assignments (used to refresh location caches).
    pub fn get_assignments(&self) -> (u64, HashMap<RegionId, ServerId>) {
        let map = self.region_map.borrow();
        (map.epoch(), map.assignments().clone())
    }
}

fn parse_server_path(path: &str) -> Option<ServerId> {
    let name = path.rsplit('/').next()?;
    let digits = name.strip_prefix("rs")?;
    digits.parse().ok().map(ServerId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_server_paths() {
        assert_eq!(parse_server_path("/live/servers/rs3"), Some(ServerId(3)));
        assert_eq!(parse_server_path("/live/servers/rs12"), Some(ServerId(12)));
        assert_eq!(parse_server_path("/live/servers/garbage"), None);
        assert_eq!(parse_server_path("/live/servers/rsX"), None);
    }
}
