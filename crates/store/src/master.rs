//! The master: region assignment, server-failure detection via the
//! coordination service, WAL splitting and region reassignment.

use crate::codec::WalRecord;
use crate::hooks::{NoopHooks, RecoveryHooks, ReplicationCoordinator, SplitCoordinator};
use crate::region::{MergeIntent, RegionDescriptor, RegionMap, SplitIntent};
use crate::server::RegionServer;
use crate::sstable::StoreFileRegistry;
use crate::types::{Mutation, RegionId, ServerId};
use crate::wal::split_wal;
use bytes::Bytes;
use cumulo_coord::CoordClient;
use cumulo_dfs::DfsClient;
use cumulo_sim::metrics::{Counter, MetricsRegistry};
use cumulo_sim::trace::Journal;
use cumulo_sim::{every, Network, NodeId, Sim, SimDuration, TimerHandle};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::rc::{Rc, Weak};

/// Each already-assigned region charges a nominal placement cost on top
/// of its server's measured service load: service loads only move when
/// traffic does, so without this a whole failed server's region set
/// would dogpile onto whichever target momentarily reads least loaded —
/// consecutive placements must see their own weight. (Shared by failover
/// placement and the proactive move checker, which must agree on what
/// "load" means.)
const ASSIGNED_REGION_COST_NS: u64 = 50_000_000;

/// Registry resolving [`ServerId`]s to live process handles, shared by the
/// master and the store clients (it plays the role of connection strings /
/// RPC stubs in a real deployment).
#[derive(Default)]
pub struct ServerDirectory {
    servers: RefCell<BTreeMap<ServerId, Rc<RegionServer>>>,
}

impl fmt::Debug for ServerDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerDirectory")
            .field("servers", &self.servers.borrow().len())
            .finish()
    }
}

impl ServerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Rc<ServerDirectory> {
        Rc::new(ServerDirectory::default())
    }

    /// Registers a server.
    pub fn register(&self, server: Rc<RegionServer>) {
        self.servers.borrow_mut().insert(server.id(), server);
    }

    /// Resolves a server handle.
    pub fn get(&self, id: ServerId) -> Option<Rc<RegionServer>> {
        self.servers.borrow().get(&id).cloned()
    }

    /// All registered server ids, in order.
    pub fn ids(&self) -> Vec<ServerId> {
        self.servers.borrow().keys().copied().collect()
    }

    /// Ids of servers whose process is currently alive.
    pub fn live_ids(&self) -> Vec<ServerId> {
        self.servers
            .borrow()
            .iter()
            .filter(|(_, s)| s.is_alive())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Master tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct MasterConfig {
    /// Retry period for regions that could not be placed (no live server).
    pub assign_retry_interval: SimDuration,
    /// Proactive hot-region move knobs.
    pub moves: MoveConfig,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            assign_retry_interval: SimDuration::from_secs(1),
            moves: MoveConfig::default(),
        }
    }
}

/// Proactive hot-region move tuning knobs. Moves reuse the load-aware
/// placement signal: when one server's load dwarfs the least-loaded
/// server's, its hottest region is closed there and reopened on the cold
/// server — the proactive mirror of what failover placement already does
/// reactively for a dead server's regions.
#[derive(Copy, Clone, Debug)]
pub struct MoveConfig {
    /// Master switch. Off by default: moves add master RPCs, flushes and
    /// map epochs, so calibrated experiments that predate them must not
    /// shift. The scale campaign enables them.
    pub enabled: bool,
    /// How often server loads are compared. The timer runs at a fixed
    /// phase — no RNG jitter (see the split timer note in `server.rs`).
    pub check_interval: SimDuration,
    /// A move is considered only when the most loaded server's placement
    /// load exceeds the least loaded server's by this factor.
    pub load_ratio: f64,
}

impl Default for MoveConfig {
    fn default() -> Self {
        MoveConfig {
            enabled: false,
            check_interval: SimDuration::from_secs(5),
            load_ratio: 4.0,
        }
    }
}

/// Per-region state of an in-flight failover of a *replicated* region:
/// the promotion probe and the WAL-split records race, and the region is
/// resolved once both the probe concluded and (on fallback) the records
/// arrived.
struct PendingRecovery {
    failed: ServerId,
    /// Recovered WAL records, once `split_wal` delivered them (discarded
    /// when the region was promoted — every acknowledged write is already
    /// present at the promoted replica, and the recovery manager replays
    /// the transaction-log suffix on top).
    records: Option<Vec<WalRecord>>,
    probe_done: bool,
    promoted: bool,
    /// Probe replies collected so far: (backup, shadow epoch,
    /// applied-through seq, synced).
    replies: Vec<(ServerId, u64, u64, bool)>,
    expected: usize,
}

/// The cluster master. Shared via `Rc`.
pub struct Master {
    sim: Sim,
    net: Rc<Network>,
    node: NodeId,
    cfg: MasterConfig,
    dfs: DfsClient,
    dir: Rc<ServerDirectory>,
    region_map: RefCell<RegionMap>,
    hooks: RefCell<Rc<dyn RecoveryHooks>>,
    handled_failures: RefCell<HashSet<ServerId>>,
    /// Regions awaiting placement (no live server was available), with
    /// their pending recovered edits and failed-server attribution.
    unplaced: RefCell<Vec<(RegionId, Vec<crate::codec::WalRecord>, Option<ServerId>)>>,
    edits_counter: Cell<u64>,
    failovers: Counter,
    /// Failure-event journal (shared cluster journal; disabled until the
    /// cluster wiring installs one via [`Master::set_events_journal`]).
    events: RefCell<Journal>,
    /// The next region id to hand out to a split daughter (ids are never
    /// reused, so a cached id always means the same key range).
    next_region_id: Cell<u32>,
    /// Split intents granted and durable but not yet completed, keyed by
    /// parent region. The master's authoritative in-flight set; the DFS
    /// record at `/split/{parent}` mirrors it for a real deployment's
    /// master restart.
    split_intents: RefCell<HashMap<RegionId, SplitIntent>>,
    intents_persisted: Counter,
    splits_applied: Counter,
    splits_rolled_back: Counter,
    /// Merge intents granted and durable but not yet completed, keyed by
    /// the *left* daughter (the intent's filesystem record lives at
    /// `/merge/{left}`), mirroring `split_intents`.
    merge_intents: RefCell<HashMap<RegionId, MergeIntent>>,
    merge_intents_persisted: Counter,
    merges_applied: Counter,
    merges_rolled_back: Counter,
    /// The one in-flight proactive move, if any: (region, donor, target).
    /// One at a time — moves are a background rebalance, not a bulk
    /// migration, and serializing them keeps the load signal honest
    /// (each move sees the previous one's effect).
    pending_move: RefCell<Option<(RegionId, ServerId, ServerId)>>,
    moves_started: Counter,
    moves_completed: Counter,
    moves_refused: Counter,
    /// Placement target-selection work actually performed (one unit per
    /// live server examined) vs what the pre-fix O(servers × regions)
    /// assignment scan would have cost — the before/after evidence pair
    /// for the placement scaling cliff, emitted in `BENCH_scale.json`.
    placement_cost: Counter,
    placement_cost_naive: Counter,
    /// The shared store-file registry (installed by the cluster wiring);
    /// intent rollback purges a crashed split's orphaned reference
    /// registrations through it so backing-ref counts cannot leak.
    registry: RefCell<Option<Rc<StoreFileRegistry>>>,
    timers: RefCell<Vec<TimerHandle>>,
    self_weak: RefCell<Weak<Master>>,
    /// Copies of each region hosted on `replication_factor - 1` backup
    /// servers; 1 (the default) disables replication entirely — no
    /// replica bookkeeping, no extra messages, byte-identical schedules.
    replication_factor: Cell<usize>,
    /// Replica-group epoch last established per region (a probe reply
    /// claiming sync under any other epoch is not trusted).
    repl_epochs: RefCell<HashMap<RegionId, u64>>,
    /// Lanes reported out of sync by their primary, keyed
    /// `(region, epoch, backup)`: ineligible for promotion. Recording
    /// this *before* acking the report is what lets the primary release
    /// its write gates soundly.
    repl_ineligible: RefCell<HashSet<(RegionId, u64, ServerId)>>,
    /// Failovers of replicated regions resolved in flight.
    pending_recoveries: RefCell<HashMap<RegionId, PendingRecovery>>,
    repl_promotions: Counter,
    repl_fallback_replays: Counter,
}

impl fmt::Debug for Master {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Master")
            .field("node", &self.node)
            .field("failovers", &self.failovers.get())
            .field("map", &*self.region_map.borrow())
            .finish()
    }
}

impl Master {
    /// Creates the master on `node`; `dfs` must be bound to the same node.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        node: NodeId,
        cfg: MasterConfig,
        dfs: DfsClient,
        dir: Rc<ServerDirectory>,
    ) -> Rc<Master> {
        let master = Rc::new(Master {
            sim: sim.clone(),
            net: Rc::clone(net),
            node,
            cfg,
            dfs,
            dir,
            region_map: RefCell::new(RegionMap::default()),
            hooks: RefCell::new(Rc::new(NoopHooks)),
            handled_failures: RefCell::new(HashSet::new()),
            unplaced: RefCell::new(Vec::new()),
            edits_counter: Cell::new(0),
            failovers: Counter::new(),
            events: RefCell::new(Journal::disabled()),
            next_region_id: Cell::new(0),
            split_intents: RefCell::new(HashMap::new()),
            intents_persisted: Counter::new(),
            splits_applied: Counter::new(),
            splits_rolled_back: Counter::new(),
            merge_intents: RefCell::new(HashMap::new()),
            merge_intents_persisted: Counter::new(),
            merges_applied: Counter::new(),
            merges_rolled_back: Counter::new(),
            pending_move: RefCell::new(None),
            moves_started: Counter::new(),
            moves_completed: Counter::new(),
            moves_refused: Counter::new(),
            placement_cost: Counter::new(),
            placement_cost_naive: Counter::new(),
            registry: RefCell::new(None),
            timers: RefCell::new(Vec::new()),
            self_weak: RefCell::new(Weak::new()),
            replication_factor: Cell::new(1),
            repl_epochs: RefCell::new(HashMap::new()),
            repl_ineligible: RefCell::new(HashSet::new()),
            pending_recoveries: RefCell::new(HashMap::new()),
            repl_promotions: Counter::new(),
            repl_fallback_replays: Counter::new(),
        });
        *master.self_weak.borrow_mut() = Rc::downgrade(&master);
        master
    }

    /// The machine the master runs on (RPC destination for clients).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the recovery middleware's hooks (also propagated to every
    /// registered server).
    pub fn set_hooks(&self, hooks: Rc<dyn RecoveryHooks>) {
        for id in self.dir.ids() {
            if let Some(s) = self.dir.get(id) {
                s.set_hooks(Rc::clone(&hooks));
            }
        }
        *self.hooks.borrow_mut() = hooks;
    }

    /// Starts failure detection (a watch on the servers' liveness znodes)
    /// and the unplaced-region retry timer.
    pub fn start(self: &Rc<Self>, coord: &CoordClient) {
        let weak = Rc::downgrade(self);
        coord.watch_prefix(
            "/live/servers/",
            move |event| {
                if let cumulo_coord::WatchEvent::Deleted(path) = event {
                    if let Some(master) = weak.upgrade() {
                        if let Some(id) = parse_server_path(&path) {
                            master.handle_server_failure(id);
                        }
                    }
                }
            },
            |_| {},
        );
        let weak = Rc::downgrade(self);
        let timer = every(&self.sim, self.cfg.assign_retry_interval, move || {
            if let Some(master) = weak.upgrade() {
                master.retry_unplaced();
            }
        });
        self.timers.borrow_mut().push(timer);
        // Proactive hot-region moves. Fixed phase, no RNG jitter, and off
        // by default (see the split timer note in `server.rs`).
        if self.cfg.moves.enabled {
            let weak = Rc::downgrade(self);
            let timer = every(&self.sim, self.cfg.moves.check_interval, move || {
                if let Some(master) = weak.upgrade() {
                    master.check_moves();
                }
            });
            self.timers.borrow_mut().push(timer);
        }
    }

    /// Assigns every region of `map` round-robin across the registered
    /// servers and opens them (cluster bootstrap). Also wires every
    /// registered server's split coordination back to this master and
    /// seeds the daughter-id allocator above the map's largest id.
    pub fn bootstrap(self: &Rc<Self>, map: RegionMap) {
        self.next_region_id
            .set(map.max_region_id().map(|r| r.0 + 1).unwrap_or(0));
        *self.region_map.borrow_mut() = map;
        for id in self.dir.ids() {
            if let Some(server) = self.dir.get(id) {
                server.set_split_coordinator(Rc::clone(self) as Rc<dyn SplitCoordinator>);
            }
        }
        let descs: Vec<RegionDescriptor> = self.region_map.borrow().regions().to_vec();
        let servers = self.dir.ids();
        assert!(
            !servers.is_empty(),
            "bootstrap requires at least one registered server"
        );
        let rf = self.replication_factor.get();
        if rf > 1 {
            for id in &servers {
                if let Some(server) = self.dir.get(*id) {
                    server.set_replication_coordinator(
                        Rc::clone(self) as Rc<dyn ReplicationCoordinator>
                    );
                }
            }
        }
        let mut assigned: Vec<(RegionId, ServerId)> = Vec::new();
        for (i, desc) in descs.into_iter().enumerate() {
            let target = servers[i % servers.len()];
            self.region_map.borrow_mut().assign(desc.id, target);
            assigned.push((desc.id, target));
            let server = self.dir.get(target).expect("registered");
            let node = server.node();
            self.net.send(self.node, node, 256, move || {
                server.open_region(desc, Vec::new(), Vec::new(), None);
            });
        }
        if rf > 1 && servers.len() > 1 {
            // Backups round-robin after the primary so load spreads and
            // no region replicates onto its own primary.
            for (i, (region, primary)) in assigned.iter().enumerate() {
                let want = (rf - 1).min(servers.len() - 1);
                let replicas: Vec<ServerId> = (1..=want)
                    .map(|k| servers[(i + k) % servers.len()])
                    .filter(|s| s != primary)
                    .collect();
                self.region_map.borrow_mut().set_replicas(*region, replicas);
            }
            let regions: Vec<RegionId> = assigned.iter().map(|(r, _)| *r).collect();
            for region in regions {
                self.establish_group(region);
            }
        }
    }

    /// A snapshot of the region map for client caches.
    pub fn snapshot_map(&self) -> RegionMap {
        self.region_map.borrow().clone()
    }

    /// Current map epoch (bumps on each assignment change).
    pub fn map_epoch(&self) -> u64 {
        self.region_map.borrow().epoch()
    }

    /// Number of server failovers processed.
    pub fn failover_count(&self) -> u64 {
        self.failovers.get()
    }

    /// Installs the cluster-shared failure-event journal (disabled until
    /// then; standalone masters and unit tests record nothing).
    pub fn set_events_journal(&self, events: Journal) {
        *self.events.borrow_mut() = events;
    }

    /// Adopts the master's counters into `registry` under `master.*`
    /// keys. Cluster wiring; call once.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("master.failovers", &[], &self.failovers);
        registry.register_counter(
            "master.split.intents_persisted",
            &[],
            &self.intents_persisted,
        );
        registry.register_counter("master.split.applied", &[], &self.splits_applied);
        registry.register_counter("master.split.rolled_back", &[], &self.splits_rolled_back);
        registry.register_counter(
            "master.merge.intents_persisted",
            &[],
            &self.merge_intents_persisted,
        );
        registry.register_counter("master.merge.applied", &[], &self.merges_applied);
        registry.register_counter("master.merge.rolled_back", &[], &self.merges_rolled_back);
        registry.register_counter("master.move.started", &[], &self.moves_started);
        registry.register_counter("master.move.completed", &[], &self.moves_completed);
        registry.register_counter("master.move.refused", &[], &self.moves_refused);
        registry.register_counter("master.placement.cost", &[], &self.placement_cost);
        registry.register_counter(
            "master.placement.cost_naive",
            &[],
            &self.placement_cost_naive,
        );
        registry.register_counter("master.repl.promotions", &[], &self.repl_promotions);
        registry.register_counter(
            "master.repl.fallback_replays",
            &[],
            &self.repl_fallback_replays,
        );
    }

    /// Handles a detected server failure: marks its regions offline,
    /// notifies the recovery hooks, splits the failed server's WAL and
    /// reassigns each region with its recovered edits (§2.1 + §3.2).
    ///
    /// Idempotent per server id.
    pub fn handle_server_failure(self: &Rc<Self>, failed: ServerId) {
        if !self.handled_failures.borrow_mut().insert(failed) {
            return;
        }
        self.failovers.inc();
        let regions = self.region_map.borrow().regions_of(failed);
        self.events
            .borrow()
            .record(self.sim.now(), "server.failover", || {
                format!("server={failed} regions={}", regions.len())
            });
        // Roll back any split intent granted to the failed server. This
        // is always safe before the map flip: clients can only address
        // region ids the map has shown them, so no write was ever
        // acknowledged under a daughter id — the parent's WAL and store
        // files still cover everything, and the daughters' orphaned
        // reference markers are deleted below. (Once `split_completed`
        // has flipped the map, the intent is gone and the daughters
        // recover here like any other region.)
        let intents: Vec<SplitIntent> = {
            let mut pending = self.split_intents.borrow_mut();
            regions.iter().filter_map(|r| pending.remove(r)).collect()
        };
        for intent in intents {
            self.rollback_intent(intent);
        }
        // Merge intents granted to the failed server roll back under the
        // same argument: the map never flipped, so no client ever
        // addressed the merged id — both daughters' WALs and store files
        // are untouched and recover normally below.
        let merge_intents: Vec<MergeIntent> = {
            let mut pending = self.merge_intents.borrow_mut();
            let mut doomed: Vec<RegionId> = pending
                .iter()
                .filter(|(_, i)| i.server == failed)
                .map(|(k, _)| *k)
                .collect();
            // HashMap iteration order varies per process; roll back in
            // key order so runs with the same seed stay byte-identical.
            doomed.sort_unstable();
            doomed
                .into_iter()
                .filter_map(|k| pending.remove(&k))
                .collect()
        };
        // lint:allow(CD001, reason = "false positive: this `merge_intents` is the local Vec built above, already sorted by key — it shadows the map field of the same name")
        for intent in merge_intents {
            self.rollback_merge_intent(intent);
        }
        // A move whose donor or target died is abandoned: the region is
        // either still assigned to the donor (recovered right here) or
        // already assigned to the target (its own failover recovers it).
        let abandoned_move = matches!(
            *self.pending_move.borrow(),
            Some((_, donor, target)) if donor == failed || target == failed
        );
        if abandoned_move {
            self.pending_move.borrow_mut().take();
        }
        {
            let mut map = self.region_map.borrow_mut();
            for r in &regions {
                map.unassign(*r);
            }
        }
        if self.replication_factor.get() > 1 {
            self.scrub_backup_roles(failed);
        }
        self.hooks.borrow().on_server_failed(failed, &regions);
        if regions.is_empty() {
            return;
        }
        // Replicated regions race a promotion probe against the WAL
        // split; unreplicated regions (always, when replication is off)
        // go straight to replay-based placement.
        let replicated: Vec<RegionId> = regions
            .iter()
            .copied()
            .filter(|r| !self.region_map.borrow().replicas_of(*r).is_empty())
            .collect();
        for region in &replicated {
            self.begin_promotion_probe(*region, failed);
        }
        let weak = Rc::downgrade(self);
        split_wal(&self.dfs, &format!("/wal/{failed}"), move |grouped| {
            let Some(master) = weak.upgrade() else { return };
            // WAL records written before an online split are tagged with
            // the parent region id, which may no longer exist — re-route
            // every record against the current map before replay.
            let mut remapped = master.remap_wal_groups(grouped);
            for region in regions {
                let records = remapped.remove(&region).unwrap_or_default();
                if replicated.contains(&region) {
                    master.recovery_records_ready(region, records);
                } else {
                    master.place_region(region, records, Some(failed));
                }
            }
        });
    }

    /// Rolls a durable-but-uncompleted split intent back: the intent
    /// record and the daughters' orphaned reference markers are deleted;
    /// the region map was never touched.
    fn rollback_intent(&self, intent: SplitIntent) {
        self.splits_rolled_back.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.rollback", || {
                format!("region={} server={}", intent.parent, intent.server)
            });
        self.dfs.delete(&format!("/split/{}", intent.parent));
        for daughter in [intent.bottom, intent.top] {
            // The dead server may have registered reference half-files
            // before crashing; purge them so the parent's physical files
            // do not carry inflated backing counts forever (which would
            // make them undeletable after a later successful split).
            if let Some(registry) = self.registry.borrow().as_ref() {
                registry.purge_references_under(&format!("/store/{daughter}/"));
            }
            let dfs = self.dfs.clone();
            self.dfs
                .clone()
                .list(&format!("/store/{daughter}/"), move |paths| {
                    for p in paths {
                        dfs.delete(&p);
                    }
                });
        }
    }

    /// Rolls a durable-but-uncompleted merge intent back: the intent
    /// record and the merged region's orphaned reference markers are
    /// deleted; the region map was never touched, so both daughters
    /// recover from their own untouched files.
    fn rollback_merge_intent(&self, intent: MergeIntent) {
        self.merges_rolled_back.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.rollback", || {
                format!(
                    "left={} right={} server={}",
                    intent.left, intent.right, intent.server
                )
            });
        self.dfs.delete(&format!("/merge/{}", intent.left));
        let merged = intent.merged;
        if let Some(registry) = self.registry.borrow().as_ref() {
            registry.purge_references_under(&format!("/store/{merged}/"));
        }
        let dfs = self.dfs.clone();
        self.dfs
            .clone()
            .list(&format!("/store/{merged}/"), move |paths| {
                for p in paths {
                    dfs.delete(&p);
                }
            });
    }

    /// Installs the shared store-file registry (cluster wiring) so split
    /// rollbacks can purge a crashed server's orphaned reference
    /// registrations. Without one, rollbacks only clean the filesystem.
    pub fn set_registry(&self, registry: Rc<StoreFileRegistry>) {
        *self.registry.borrow_mut() = Some(registry);
    }

    /// Re-groups a failed server's WAL records by the *current* region
    /// map: records tagged with a since-split parent id are partitioned
    /// at the daughter boundary (a record whose region still exists
    /// passes through untouched). Source groups are visited in sorted
    /// region order so the recovered-edits encoding stays byte-identical
    /// across processes.
    fn remap_wal_groups(
        &self,
        grouped: HashMap<RegionId, Vec<WalRecord>>,
    ) -> BTreeMap<RegionId, Vec<WalRecord>> {
        let map = self.region_map.borrow();
        let mut source: Vec<(RegionId, Vec<WalRecord>)> = grouped.into_iter().collect();
        source.sort_by_key(|(id, _)| *id);
        let mut out: BTreeMap<RegionId, Vec<WalRecord>> = BTreeMap::new();
        for (_, records) in source {
            for rec in records {
                if map.descriptor(rec.region).is_some() {
                    // Region ids are never reused, so a live id still
                    // means the same key range: the record stands.
                    out.entry(rec.region).or_default().push(rec);
                    continue;
                }
                let mut per: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
                for m in rec.mutations {
                    per.entry(map.region_for(&m.row)).or_default().push(m);
                }
                for (region, mutations) in per {
                    out.entry(region).or_default().push(WalRecord {
                        region,
                        ts: rec.ts,
                        mutations,
                    });
                }
            }
        }
        out
    }

    /// Places a region on the live server hosting the fewest regions;
    /// queues it for retry if no server is alive.
    ///
    /// Split WAL records are first persisted as a *recovered-edits file*
    /// in the filesystem (as HBase does), so that a cascading failure of
    /// the new host cannot lose them: the next recovery round re-reads
    /// them. The file is deleted once the region's memstore flushes.
    fn place_region(
        self: &Rc<Self>,
        region: RegionId,
        records: Vec<crate::codec::WalRecord>,
        failed: Option<ServerId>,
    ) {
        if records.is_empty() {
            self.place_region_with_edits(region, failed);
            return;
        }
        let n = self.edits_counter.get();
        self.edits_counter.set(n + 1);
        let path = format!("/recovered/{region}/{n:06}");
        let encoded = crate::codec::encode_wal_batch(&records);
        let weak = self.self_weak.borrow().clone();
        self.dfs.create(&path, move |file| {
            let Ok(file) = file else {
                // Already exists should be impossible (unique counter);
                // a failed create means no datanodes — retry via queue.
                if let Some(master) = weak.upgrade() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                }
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                    return;
                }
                master.place_region_with_edits(region, failed);
            });
        });
    }

    /// Second placement phase: recovered edits (if any) are durable in the
    /// filesystem; choose a host and open the region there.
    ///
    /// Placement is *load-aware*: the least-loaded live server wins,
    /// where load is the cumulative foreground service time its assigned
    /// regions have charged (ties broken by server id, so placement is
    /// deterministic). Region counts are a poor proxy under skew — one
    /// hot region outweighs many cold ones, and it is exactly the hot
    /// parent's daughters this most often places.
    fn place_region_with_edits(self: &Rc<Self>, region: RegionId, failed: Option<ServerId>) {
        let target = {
            let map = self.region_map.borrow();
            let live_ids = self.dir.live_ids();
            // Before the indexed counts, each server's assigned-region
            // count was a full scan of the assignments map — O(servers ×
            // regions) per placement, the cliff a mass-split failover
            // storm runs into. The counter pair records the work actually
            // done vs what the scan would have cost, so the scale bench
            // can emit the before/after evidence.
            self.placement_cost.add(live_ids.len() as u64);
            self.placement_cost_naive
                .add((live_ids.len() * map.regions().len()) as u64);
            let mut live: Vec<(u64, ServerId)> = live_ids
                .into_iter()
                .map(|id| {
                    let load = self
                        .dir
                        .get(id)
                        .map(|s| s.service_load_ns())
                        .unwrap_or(u64::MAX);
                    let assigned = map.assigned_count(id) as u64;
                    (load.saturating_add(assigned * ASSIGNED_REGION_COST_NS), id)
                })
                .collect();
            live.sort_unstable();
            live.first().map(|(_, id)| *id)
        };
        let Some(target) = target else {
            self.unplaced
                .borrow_mut()
                .push((region, Vec::new(), failed));
            return;
        };
        let desc = self
            .region_map
            .borrow()
            .descriptor(region)
            .expect("region exists in the map")
            .clone();
        self.region_map.borrow_mut().assign(region, target);
        self.events
            .borrow()
            .record(self.sim.now(), "region.assign", || {
                format!("region={region} server={target}")
            });
        let server = self.dir.get(target).expect("registered");
        let node = server.node();
        let dfs = self.dfs.clone();
        let net = Rc::clone(&self.net);
        let master_node = self.node;
        // Resolve the region's store files and recovered-edits files from
        // the filesystem namespace (the equivalent of listing the
        // region's HDFS directories).
        dfs.clone()
            .list(&format!("/store/{region}/"), move |paths| {
                dfs.list(&format!("/recovered/{region}/"), move |edits| {
                    net.send(master_node, node, 512, move || {
                        server.open_region(desc, paths, edits, failed);
                    });
                });
            });
        // A replicated region placed via the replay fallback gets its
        // group rebuilt around the new primary.
        if self.replication_factor.get() > 1
            && !self.region_map.borrow().replicas_of(region).is_empty()
        {
            let mut replicas: Vec<ServerId> = self
                .region_map
                .borrow()
                .replicas_of(region)
                .iter()
                .copied()
                .filter(|s| *s != target && Some(*s) != failed)
                .collect();
            self.fill_replicas(region, target, &mut replicas);
            self.region_map.borrow_mut().set_replicas(region, replicas);
            self.establish_group(region);
        }
    }

    fn retry_unplaced(self: &Rc<Self>) {
        let pending: Vec<_> = self.unplaced.borrow_mut().drain(..).collect();
        for (region, records, failed) in pending {
            self.place_region(region, records, failed);
        }
    }

    /// Client RPC: current assignments (used to refresh location caches).
    pub fn get_assignments(&self) -> (u64, HashMap<RegionId, ServerId>) {
        let map = self.region_map.borrow();
        (map.epoch(), map.assignments().clone())
    }

    // ------------------------------------------------------------------
    // Online region splits (master side; see `SplitCoordinator`)
    // ------------------------------------------------------------------

    /// Split intents made durable in the filesystem.
    pub fn split_intents_persisted(&self) -> u64 {
        self.intents_persisted.get()
    }

    /// Splits applied to the region map.
    pub fn splits_applied(&self) -> u64 {
        self.splits_applied.get()
    }

    /// Split intents rolled back (server failed mid-split, marker writes
    /// failed, or the intent could not be persisted).
    pub fn splits_rolled_back(&self) -> u64 {
        self.splits_rolled_back.get()
    }

    /// Whether a split intent is currently outstanding for `region`.
    pub fn split_intent_outstanding(&self, region: RegionId) -> bool {
        self.split_intents.borrow().contains_key(&region)
    }

    /// Validates a server's split request; on success persists the
    /// intent and, once durable, tells the server to execute.
    fn handle_split_request(self: &Rc<Self>, server: ServerId, region: RegionId, split_key: Bytes) {
        let valid = {
            let map = self.region_map.borrow();
            let assigned_here = map.server_for(region) == Some(server);
            let inside = map
                .descriptor(region)
                .map(|d| {
                    split_key[..] > d.start[..]
                        && d.end.as_ref().map(|e| &split_key < e).unwrap_or(true)
                })
                .unwrap_or(false);
            assigned_here
                && inside
                && !self.handled_failures.borrow().contains(&server)
                && !self.split_intents.borrow().contains_key(&region)
                && !self.merge_involves(region)
        };
        if !valid {
            self.deny_split(server, region);
            return;
        }
        let bottom = RegionId(self.next_region_id.get());
        let top = RegionId(self.next_region_id.get() + 1);
        self.next_region_id.set(self.next_region_id.get() + 2);
        let intent = SplitIntent {
            parent: region,
            split_key: split_key.clone(),
            bottom,
            top,
            server,
        };
        // Record in memory first so a racing second request is denied;
        // the DFS record is written before the server may execute — the
        // durability point the crash-window analysis hinges on.
        self.split_intents
            .borrow_mut()
            .insert(region, intent.clone());
        let encoded = intent.encode();
        let weak = Rc::downgrade(self);
        self.dfs.create(&format!("/split/{region}"), move |file| {
            let Some(master) = weak.upgrade() else { return };
            let Ok(file) = file else {
                // Create can fail with AlreadyExists when an earlier
                // attempt's append died half-way and left the file
                // behind; delete it so the region is not permanently
                // split-blocked, then deny (the server re-requests).
                master.dfs.delete(&format!("/split/{region}"));
                master.split_intents.borrow_mut().remove(&region);
                master.deny_split(server, region);
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    // The created-but-unwritten intent file would block
                    // every future split of this region (AlreadyExists).
                    master.dfs.delete(&format!("/split/{region}"));
                    master.split_intents.borrow_mut().remove(&region);
                    master.deny_split(server, region);
                    return;
                }
                master.intents_persisted.inc();
                master
                    .events
                    .borrow()
                    .record(master.sim.now(), "split.persisted", || {
                        format!("region={region} server={server} bottom={bottom} top={top}")
                    });
                // The server may have died while the intent was being
                // written; its failover already rolled the intent back.
                if !master.split_intents.borrow().contains_key(&region) {
                    return;
                }
                let Some(target) = master.dir.get(server) else {
                    return;
                };
                let node = target.node();
                master.net.send(master.node, node, 96, move || {
                    target.execute_split(region, split_key, bottom, top);
                });
            });
        });
    }

    fn deny_split(&self, server: ServerId, region: RegionId) {
        let Some(target) = self.dir.get(server) else {
            return;
        };
        let node = target.node();
        self.net.send(self.node, node, 48, move || {
            target.split_request_denied(region);
        });
    }

    // ------------------------------------------------------------------
    // Online region merges (master side; see `SplitCoordinator`)
    // ------------------------------------------------------------------

    /// Merge intents made durable in the filesystem.
    pub fn merge_intents_persisted(&self) -> u64 {
        self.merge_intents_persisted.get()
    }

    /// Merges applied to the region map.
    pub fn merges_applied(&self) -> u64 {
        self.merges_applied.get()
    }

    /// Merge intents rolled back (server failed mid-merge, marker writes
    /// failed, or the intent could not be persisted).
    pub fn merges_rolled_back(&self) -> u64 {
        self.merges_rolled_back.get()
    }

    /// Whether a merge intent currently involves `region` (as either
    /// daughter).
    pub fn merge_involves(&self, region: RegionId) -> bool {
        self.merge_intents
            .borrow()
            .values()
            .any(|i| i.left == region || i.right == region)
    }

    /// Validates a server's merge request; on success persists the
    /// intent and, once durable, tells the server to execute. Valid
    /// requests name two regions that are adjacent in key order, both
    /// assigned to the requesting server, with no split or merge intent
    /// outstanding on either. Merging replicated regions is not
    /// supported: the daughters' shadow lanes would have to be collapsed
    /// too, and the scale campaign does not need the combination.
    fn handle_merge_request(self: &Rc<Self>, server: ServerId, left: RegionId, right: RegionId) {
        let valid = {
            let map = self.region_map.borrow();
            let assigned_here =
                map.server_for(left) == Some(server) && map.server_for(right) == Some(server);
            let adjacent = map
                .descriptor(left)
                .zip(map.descriptor(right))
                .map(|(l, r)| l.end.as_deref() == Some(&r.start[..]))
                .unwrap_or(false);
            let unreplicated =
                map.replicas_of(left).is_empty() && map.replicas_of(right).is_empty();
            let intents = self.split_intents.borrow();
            assigned_here
                && adjacent
                && unreplicated
                && !self.handled_failures.borrow().contains(&server)
                && !intents.contains_key(&left)
                && !intents.contains_key(&right)
                && !self.merge_involves(left)
                && !self.merge_involves(right)
        };
        if !valid {
            self.deny_merge(server, left);
            return;
        }
        let merged = RegionId(self.next_region_id.get());
        self.next_region_id.set(self.next_region_id.get() + 1);
        let intent = MergeIntent {
            left,
            right,
            merged,
            server,
        };
        // Record in memory first so a racing second request is denied;
        // the DFS record is written before the server may execute — the
        // same durability point as the split intent.
        self.merge_intents.borrow_mut().insert(left, intent.clone());
        let encoded = intent.encode();
        let weak = Rc::downgrade(self);
        self.dfs.create(&format!("/merge/{left}"), move |file| {
            let Some(master) = weak.upgrade() else { return };
            let Ok(file) = file else {
                // Create can fail with AlreadyExists when an earlier
                // attempt's append died half-way and left the file
                // behind; delete it so the pair is not permanently
                // merge-blocked, then deny (the server re-requests).
                master.dfs.delete(&format!("/merge/{left}"));
                master.merge_intents.borrow_mut().remove(&left);
                master.deny_merge(server, left);
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    master.dfs.delete(&format!("/merge/{left}"));
                    master.merge_intents.borrow_mut().remove(&left);
                    master.deny_merge(server, left);
                    return;
                }
                master.merge_intents_persisted.inc();
                master
                    .events
                    .borrow()
                    .record(master.sim.now(), "merge.persisted", || {
                        format!("left={left} right={right} server={server} merged={merged}")
                    });
                // The server may have died while the intent was being
                // written; its failover already rolled the intent back.
                if !master.merge_intents.borrow().contains_key(&left) {
                    return;
                }
                let Some(target) = master.dir.get(server) else {
                    return;
                };
                let node = target.node();
                master.net.send(master.node, node, 96, move || {
                    target.execute_merge(left, right, merged);
                });
            });
        });
    }

    fn deny_merge(&self, server: ServerId, left: RegionId) {
        let Some(target) = self.dir.get(server) else {
            return;
        };
        let node = target.node();
        self.net.send(self.node, node, 48, move || {
            target.merge_request_denied(left);
        });
    }

    // ------------------------------------------------------------------
    // Proactive hot-region moves (master side)
    // ------------------------------------------------------------------

    /// Moves completed (region reopened on its new host).
    pub fn moves_completed(&self) -> u64 {
        self.moves_completed.get()
    }

    /// Compares live servers' placement loads and, when the spread
    /// exceeds the configured ratio, closes the most loaded server's
    /// hottest region and reopens it on the least loaded server. One
    /// move at a time; each runs the same close → flush → reopen path a
    /// failover uses, minus the WAL replay (the donor flushes before
    /// closing, so the region's state is entirely in its store files).
    fn check_moves(self: &Rc<Self>) {
        if self.pending_move.borrow().is_some() {
            return;
        }
        let picked = {
            let map = self.region_map.borrow();
            let mut live: Vec<(u64, ServerId)> = self
                .dir
                .live_ids()
                .into_iter()
                .map(|id| {
                    let load = self
                        .dir
                        .get(id)
                        .map(|s| s.service_load_ns())
                        .unwrap_or(u64::MAX);
                    let assigned = map.assigned_count(id) as u64;
                    (load.saturating_add(assigned * ASSIGNED_REGION_COST_NS), id)
                })
                .collect();
            live.sort_unstable();
            if live.len() < 2 {
                return;
            }
            let (cold_load, cold) = live[0];
            let (hot_load, hot) = *live.last().expect("non-empty");
            if (hot_load as f64) < (cold_load.max(1) as f64) * self.cfg.moves.load_ratio {
                return;
            }
            if map.assigned_count(hot) < 2 {
                return; // never strip a server of its only region
            }
            let Some(donor) = self.dir.get(hot) else {
                return;
            };
            // Hottest hosted region by charged load, ids as the
            // deterministic tie-break; regions tangled in a split or
            // merge intent (or replicated) stay put.
            let candidate = map
                .regions_of(hot)
                .into_iter()
                .filter(|r| {
                    !self.split_intents.borrow().contains_key(r)
                        && !self.merge_involves(*r)
                        && map.replicas_of(*r).is_empty()
                })
                .map(|r| (donor.region_load_ns(r), r))
                .max_by(|a, b| (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1))));
            candidate.map(|(_, region)| (region, hot, cold))
        };
        let Some((region, donor, target)) = picked else {
            return;
        };
        *self.pending_move.borrow_mut() = Some((region, donor, target));
        self.moves_started.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "move.start", || {
                format!("region={region} donor={donor} target={target}")
            });
        let Some(server) = self.dir.get(donor) else {
            self.pending_move.borrow_mut().take();
            return;
        };
        let node = server.node();
        let done: Box<dyn FnOnce(bool)> = {
            let weak = Rc::downgrade(self);
            let net = Rc::clone(&self.net);
            let mnode = self.node;
            Box::new(move |ok| {
                net.send(node, mnode, 48, move || {
                    if let Some(master) = weak.upgrade() {
                        master.move_closed(region, donor, ok);
                    }
                });
            })
        };
        self.net.send(self.node, node, 64, move || {
            server.prepare_move(region, done);
        });
    }

    /// The donor closed (or refused to close) the moving region. On
    /// success the region is reassigned and reopened on the chosen
    /// target — or wherever placement prefers now, if the target died in
    /// the meantime.
    fn move_closed(self: &Rc<Self>, region: RegionId, donor: ServerId, ok: bool) {
        let matches = matches!(
            *self.pending_move.borrow(),
            Some((r, d, _)) if r == region && d == donor
        );
        if !matches || self.handled_failures.borrow().contains(&donor) {
            return;
        }
        let (_, _, target) = self.pending_move.borrow_mut().take().expect("checked");
        if !ok {
            self.moves_refused.inc();
            return;
        }
        // The donor flushed and dropped the region; until the reopen
        // completes the region is offline (clients retry on NotServing,
        // exactly as during a failover).
        let alive = self.dir.get(target).map(|s| s.is_alive()).unwrap_or(false);
        if !alive {
            self.region_map.borrow_mut().unassign(region);
            self.place_region_with_edits(region, None);
            return;
        }
        self.region_map.borrow_mut().assign(region, target);
        self.moves_completed.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "move.open", || {
                format!("region={region} donor={donor} target={target}")
            });
        let desc = self
            .region_map
            .borrow()
            .descriptor(region)
            .expect("region exists in the map")
            .clone();
        let server = self.dir.get(target).expect("alive implies registered");
        let node = server.node();
        let dfs = self.dfs.clone();
        let net = Rc::clone(&self.net);
        let master_node = self.node;
        dfs.clone()
            .list(&format!("/store/{region}/"), move |paths| {
                net.send(master_node, node, 512, move || {
                    server.open_region(desc, paths, Vec::new(), None);
                });
            });
    }

    // ------------------------------------------------------------------
    // Region replication (master side; see `ReplicationCoordinator`)
    // ------------------------------------------------------------------

    /// Sets the number of copies each region is hosted on (1 = primary
    /// only, replication disabled). Call before [`Master::bootstrap`].
    pub fn set_replication_factor(&self, factor: usize) {
        self.replication_factor.set(factor.max(1));
    }

    /// Promotions of a caught-up replica in place of a WAL replay.
    pub fn promotions(&self) -> u64 {
        self.repl_promotions.get()
    }

    /// Failovers of replicated regions that had to fall back to a full
    /// WAL replay (no eligible replica survived).
    pub fn fallback_replays(&self) -> u64 {
        self.repl_fallback_replays.get()
    }

    /// (Re)establishes `region`'s replica group from the current map:
    /// backups get shadows opened, the primary gets the lane set, and the
    /// map epoch at this instant becomes the group's fencing epoch.
    fn establish_group(self: &Rc<Self>, region: RegionId) {
        if self.replication_factor.get() <= 1 {
            return;
        }
        let (primary, replicas, epoch, desc) = {
            let map = self.region_map.borrow();
            (
                map.server_for(region),
                map.replicas_of(region).to_vec(),
                map.epoch(),
                map.descriptor(region).cloned(),
            )
        };
        let (Some(primary), Some(desc)) = (primary, desc) else {
            return;
        };
        let Some(pserver) = self.dir.get(primary) else {
            return;
        };
        if !pserver.is_alive() || replicas.is_empty() {
            return;
        }
        self.repl_epochs.borrow_mut().insert(region, epoch);
        self.repl_ineligible
            .borrow_mut()
            .retain(|(r, e, _)| *r != region || *e >= epoch);
        let backups: Vec<(ServerId, NodeId, Weak<RegionServer>)> = replicas
            .iter()
            .filter_map(|id| {
                self.dir
                    .get(*id)
                    .map(|s| (*id, s.node(), Rc::downgrade(&s)))
            })
            .collect();
        for id in &replicas {
            let Some(bserver) = self.dir.get(*id) else {
                continue;
            };
            if !bserver.is_alive() {
                continue;
            }
            let bnode = bserver.node();
            let desc = desc.clone();
            self.net.send(self.node, bnode, 128, move || {
                bserver.open_shadow(region, desc, epoch);
            });
        }
        self.events
            .borrow()
            .record(self.sim.now(), "replication.establish", || {
                format!(
                    "region={region} primary={primary} epoch={epoch} backups={}",
                    replicas.len()
                )
            });
        let pnode = pserver.node();
        self.net.send(self.node, pnode, 128, move || {
            pserver.establish_replica_group(region, epoch, backups);
        });
    }

    /// Tops `replicas` back up to `replication_factor - 1` live servers
    /// distinct from `primary`, rotating candidates by region id so
    /// repairs spread deterministically.
    fn fill_replicas(&self, region: RegionId, primary: ServerId, replicas: &mut Vec<ServerId>) {
        let want = self.replication_factor.get().saturating_sub(1);
        replicas.retain(|s| self.dir.get(*s).map(|h| h.is_alive()).unwrap_or(false));
        if replicas.len() >= want {
            replicas.truncate(want);
            return;
        }
        let candidates: Vec<ServerId> = self
            .dir
            .live_ids()
            .into_iter()
            .filter(|s| *s != primary && !replicas.contains(s))
            .collect();
        for k in 0..candidates.len() {
            if replicas.len() >= want {
                break;
            }
            let c = candidates[(region.0 as usize + k) % candidates.len()];
            if !replicas.contains(&c) {
                replicas.push(c);
            }
        }
    }

    /// `failed` was a *backup* for some regions: shrink those replica
    /// sets, repair them with deterministic replacements, and re-establish
    /// the groups so the primaries stop gating on the dead lane.
    fn scrub_backup_roles(self: &Rc<Self>, failed: ServerId) {
        let hosts = self.region_map.borrow().replica_hosts(failed);
        for region in hosts {
            let primary = self.region_map.borrow().server_for(region);
            let mut replicas: Vec<ServerId> = self
                .region_map
                .borrow()
                .replicas_of(region)
                .iter()
                .copied()
                .filter(|s| *s != failed)
                .collect();
            if let Some(p) = primary {
                self.fill_replicas(region, p, &mut replicas);
            }
            self.region_map.borrow_mut().set_replicas(region, replicas);
            self.events
                .borrow()
                .record(self.sim.now(), "replication.repair", || {
                    format!("region={region} lost_backup={failed}")
                });
            if primary.is_some() {
                self.establish_group(region);
            }
        }
    }

    /// Starts the promotion probe for a replicated region whose primary
    /// just died: ask every live backup for its shadow state, conclude on
    /// the last reply or a fixed deadline, whichever first.
    fn begin_promotion_probe(self: &Rc<Self>, region: RegionId, failed: ServerId) {
        const PROBE_DEADLINE: SimDuration = SimDuration::from_millis(500);
        let backups: Vec<Rc<RegionServer>> = self
            .region_map
            .borrow()
            .replicas_of(region)
            .iter()
            .filter(|s| **s != failed)
            .filter_map(|s| self.dir.get(*s))
            .filter(|s| s.is_alive())
            .collect();
        self.pending_recoveries.borrow_mut().insert(
            region,
            PendingRecovery {
                failed,
                records: None,
                probe_done: false,
                promoted: false,
                replies: Vec::new(),
                expected: backups.len(),
            },
        );
        if backups.is_empty() {
            self.conclude_probe(region);
            return;
        }
        for backup in backups {
            let bid = backup.id();
            let bnode = backup.node();
            let reply: Box<dyn FnOnce(u64, u64, bool)> = {
                let weak = Rc::downgrade(self);
                let net = Rc::clone(&self.net);
                let mnode = self.node;
                Box::new(move |epoch, seq, synced| {
                    net.send(bnode, mnode, 48, move || {
                        if let Some(master) = weak.upgrade() {
                            master.probe_reply(region, bid, epoch, seq, synced);
                        }
                    });
                })
            };
            self.net.send(self.node, bnode, 48, move || {
                backup.query_replica(region, reply);
            });
        }
        let weak = Rc::downgrade(self);
        self.sim.schedule_in(PROBE_DEADLINE, move || {
            if let Some(master) = weak.upgrade() {
                master.conclude_probe(region);
            }
        });
    }

    fn probe_reply(
        self: &Rc<Self>,
        region: RegionId,
        backup: ServerId,
        epoch: u64,
        seq: u64,
        synced: bool,
    ) {
        let ready = {
            let mut pending = self.pending_recoveries.borrow_mut();
            let Some(p) = pending.get_mut(&region) else {
                return;
            };
            if p.probe_done {
                return;
            }
            p.replies.push((backup, epoch, seq, synced));
            p.replies.len() >= p.expected
        };
        if ready {
            self.conclude_probe(region);
        }
    }

    /// Decides promotion vs replay fallback. Eligible replicas must be
    /// alive, in sync *at the currently established epoch*, and not in
    /// the ineligibility set; the most caught-up wins (ties to the lower
    /// server id).
    fn conclude_probe(self: &Rc<Self>, region: RegionId) {
        let (failed, winner) = {
            let mut pending = self.pending_recoveries.borrow_mut();
            let Some(p) = pending.get_mut(&region) else {
                return;
            };
            if p.probe_done {
                return;
            }
            p.probe_done = true;
            let current_epoch = self.repl_epochs.borrow().get(&region).copied().unwrap_or(0);
            let ineligible = self.repl_ineligible.borrow();
            let mut eligible: Vec<(u64, ServerId)> = p
                .replies
                .iter()
                .filter(|(b, e, _, synced)| {
                    *synced
                        && *e == current_epoch
                        && !ineligible.contains(&(region, *e, *b))
                        && self.dir.get(*b).map(|s| s.is_alive()).unwrap_or(false)
                })
                .map(|(b, _, seq, _)| (*seq, *b))
                .collect();
            eligible.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let winner = eligible.first().map(|(_, b)| *b);
            p.promoted = winner.is_some();
            (p.failed, winner)
        };
        match winner {
            Some(winner) => {
                self.repl_promotions.inc();
                self.events
                    .borrow()
                    .record(self.sim.now(), "replication.promote", || {
                        format!("region={region} winner={winner} failed={failed}")
                    });
                self.region_map.borrow_mut().assign(region, winner);
                let mut replicas: Vec<ServerId> = self
                    .region_map
                    .borrow()
                    .replicas_of(region)
                    .iter()
                    .copied()
                    .filter(|s| *s != winner && *s != failed)
                    .collect();
                self.fill_replicas(region, winner, &mut replicas);
                self.region_map.borrow_mut().set_replicas(region, replicas);
                let epoch = self.region_map.borrow().epoch();
                if let Some(server) = self.dir.get(winner) {
                    let node = server.node();
                    self.net.send(self.node, node, 256, move || {
                        server.promote_replica(region, epoch, failed);
                    });
                }
                self.establish_group(region);
                let mut pending = self.pending_recoveries.borrow_mut();
                if pending.get(&region).map(|p| p.records.is_some()) == Some(true) {
                    pending.remove(&region);
                }
            }
            None => {
                self.repl_fallback_replays.inc();
                self.events
                    .borrow()
                    .record(self.sim.now(), "replication.fallback", || {
                        format!("region={region} failed={failed}")
                    });
                let records = {
                    let mut pending = self.pending_recoveries.borrow_mut();
                    match pending.get_mut(&region).and_then(|p| p.records.take()) {
                        Some(r) => {
                            pending.remove(&region);
                            Some(r)
                        }
                        None => None, // WAL split still running; resolved on arrival.
                    }
                };
                if let Some(records) = records {
                    self.place_region(region, records, Some(failed));
                }
            }
        }
    }

    /// The WAL split delivered `region`'s recovered records: replayed on
    /// the fallback path, discarded after a promotion (the promoted
    /// replica already holds every acknowledged write).
    fn recovery_records_ready(self: &Rc<Self>, region: RegionId, records: Vec<WalRecord>) {
        let next: Option<Option<ServerId>> = {
            let mut pending = self.pending_recoveries.borrow_mut();
            match pending.get_mut(&region) {
                // No probe outstanding (e.g. a re-failure raced): replay.
                None => Some(None),
                Some(p) if !p.probe_done => {
                    p.records = Some(records);
                    return;
                }
                Some(p) => {
                    let next = if p.promoted {
                        None
                    } else {
                        Some(Some(p.failed))
                    };
                    pending.remove(&region);
                    next
                }
            }
        };
        if let Some(failed) = next {
            self.place_region(region, records, failed);
        }
    }
}

impl SplitCoordinator for Master {
    fn node(&self) -> NodeId {
        self.node
    }

    fn request_split(&self, server: ServerId, region: RegionId, split_key: Bytes) {
        if let Some(master) = self.self_weak.borrow().upgrade() {
            master.handle_split_request(server, region, split_key);
        }
    }

    fn split_completed(&self, server: ServerId, parent: RegionId) {
        // A failover that raced ahead has already rolled the intent back
        // (and this message came from a now-dead server): ignore.
        let intent = {
            let intents = self.split_intents.borrow();
            match intents.get(&parent) {
                Some(i) if i.server == server => Some(i.clone()),
                _ => None,
            }
        };
        let Some(intent) = intent else { return };
        if self.handled_failures.borrow().contains(&server) {
            return;
        }
        let applied = self.region_map.borrow_mut().apply_split(
            parent,
            &intent.split_key,
            intent.bottom,
            intent.top,
        );
        if !applied {
            return;
        }
        self.split_intents.borrow_mut().remove(&parent);
        self.splits_applied.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.applied", || {
                format!(
                    "region={parent} bottom={} top={}",
                    intent.bottom, intent.top
                )
            });
        self.dfs.delete(&format!("/split/{parent}"));
        self.hooks
            .borrow()
            .on_region_split(parent, intent.bottom, intent.top);
        // The daughters inherited the parent's replicas in the map;
        // rebuild their groups under the bumped epoch (the server already
        // moved its lanes and closed the parent shadows at the flip).
        if self.replication_factor.get() > 1 {
            if let Some(master) = self.self_weak.borrow().upgrade() {
                master.repl_epochs.borrow_mut().remove(&parent);
                for daughter in [intent.bottom, intent.top] {
                    if !master.region_map.borrow().replicas_of(daughter).is_empty() {
                        master.establish_group(daughter);
                    }
                }
            }
        }
    }

    fn split_aborted(&self, server: ServerId, parent: RegionId) {
        let intent = {
            let mut intents = self.split_intents.borrow_mut();
            match intents.get(&parent) {
                Some(i) if i.server == server => intents.remove(&parent),
                _ => None,
            }
        };
        if let Some(intent) = intent {
            self.rollback_intent(intent);
        }
    }

    fn request_merge(&self, server: ServerId, left: RegionId, right: RegionId) {
        if let Some(master) = self.self_weak.borrow().upgrade() {
            master.handle_merge_request(server, left, right);
        }
    }

    fn merge_completed(&self, server: ServerId, left: RegionId) {
        // A failover that raced ahead has already rolled the intent back
        // (and this message came from a now-dead server): ignore.
        let intent = {
            let intents = self.merge_intents.borrow();
            match intents.get(&left) {
                Some(i) if i.server == server => Some(i.clone()),
                _ => None,
            }
        };
        let Some(intent) = intent else { return };
        if self.handled_failures.borrow().contains(&server) {
            return;
        }
        let applied =
            self.region_map
                .borrow_mut()
                .apply_merge(intent.left, intent.right, intent.merged);
        if !applied {
            return;
        }
        self.merge_intents.borrow_mut().remove(&left);
        self.merges_applied.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "merge.applied", || {
                format!(
                    "left={} right={} merged={}",
                    intent.left, intent.right, intent.merged
                )
            });
        self.dfs.delete(&format!("/merge/{left}"));
        self.hooks
            .borrow()
            .on_region_merged(intent.left, intent.right, intent.merged);
    }

    fn merge_aborted(&self, server: ServerId, left: RegionId) {
        let intent = {
            let mut intents = self.merge_intents.borrow_mut();
            match intents.get(&left) {
                Some(i) if i.server == server => intents.remove(&left),
                _ => None,
            }
        };
        if let Some(intent) = intent {
            self.rollback_merge_intent(intent);
        }
    }
}

impl ReplicationCoordinator for Master {
    fn node(&self) -> NodeId {
        self.node
    }

    fn replica_unsynced(
        &self,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        done: Box<dyn FnOnce(bool)>,
    ) {
        // A report under an older epoch than the currently established
        // group comes from a stale ex-primary (it resurfaced after a
        // promotion it never saw). Acking would let it un-gate and hand
        // out write acks for a region it no longer owns — direct it to
        // fence itself instead.
        let current = self.repl_epochs.borrow().get(&region).copied();
        let stale = current.map(|c| epoch < c).unwrap_or(true);
        if stale {
            self.events
                .borrow()
                .record(self.sim.now(), "replication.stale_report", || {
                    format!("region={region} epoch={epoch} backup={backup}")
                });
            done(true);
            return;
        }
        self.repl_ineligible
            .borrow_mut()
            .insert((region, epoch, backup));
        self.events
            .borrow()
            .record(self.sim.now(), "replication.ineligible", || {
                format!("region={region} epoch={epoch} backup={backup}")
            });
        // Acking *after* recording is the soundness point: the primary
        // releases gates only once this backup can no longer win a
        // promotion at this epoch.
        done(false);
    }

    fn replica_synced(&self, region: RegionId, epoch: u64, backup: ServerId) {
        if self
            .repl_ineligible
            .borrow_mut()
            .remove(&(region, epoch, backup))
        {
            self.events
                .borrow()
                .record(self.sim.now(), "replication.eligible", || {
                    format!("region={region} epoch={epoch} backup={backup}")
                });
        }
    }
}

fn parse_server_path(path: &str) -> Option<ServerId> {
    let name = path.rsplit('/').next()?;
    let digits = name.strip_prefix("rs")?;
    digits.parse().ok().map(ServerId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_server_paths() {
        assert_eq!(parse_server_path("/live/servers/rs3"), Some(ServerId(3)));
        assert_eq!(parse_server_path("/live/servers/rs12"), Some(ServerId(12)));
        assert_eq!(parse_server_path("/live/servers/garbage"), None);
        assert_eq!(parse_server_path("/live/servers/rsX"), None);
    }
}
