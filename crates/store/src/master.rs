//! The master: region assignment, server-failure detection via the
//! coordination service, WAL splitting and region reassignment.

use crate::codec::WalRecord;
use crate::hooks::{NoopHooks, RecoveryHooks, SplitCoordinator};
use crate::region::{RegionDescriptor, RegionMap, SplitIntent};
use crate::server::RegionServer;
use crate::sstable::StoreFileRegistry;
use crate::types::{Mutation, RegionId, ServerId};
use crate::wal::split_wal;
use bytes::Bytes;
use cumulo_coord::CoordClient;
use cumulo_dfs::DfsClient;
use cumulo_sim::metrics::{Counter, MetricsRegistry};
use cumulo_sim::trace::Journal;
use cumulo_sim::{every, Network, NodeId, Sim, SimDuration, TimerHandle};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::rc::{Rc, Weak};

/// Registry resolving [`ServerId`]s to live process handles, shared by the
/// master and the store clients (it plays the role of connection strings /
/// RPC stubs in a real deployment).
#[derive(Default)]
pub struct ServerDirectory {
    servers: RefCell<BTreeMap<ServerId, Rc<RegionServer>>>,
}

impl fmt::Debug for ServerDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerDirectory")
            .field("servers", &self.servers.borrow().len())
            .finish()
    }
}

impl ServerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Rc<ServerDirectory> {
        Rc::new(ServerDirectory::default())
    }

    /// Registers a server.
    pub fn register(&self, server: Rc<RegionServer>) {
        self.servers.borrow_mut().insert(server.id(), server);
    }

    /// Resolves a server handle.
    pub fn get(&self, id: ServerId) -> Option<Rc<RegionServer>> {
        self.servers.borrow().get(&id).cloned()
    }

    /// All registered server ids, in order.
    pub fn ids(&self) -> Vec<ServerId> {
        self.servers.borrow().keys().copied().collect()
    }

    /// Ids of servers whose process is currently alive.
    pub fn live_ids(&self) -> Vec<ServerId> {
        self.servers
            .borrow()
            .iter()
            .filter(|(_, s)| s.is_alive())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Master tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct MasterConfig {
    /// Retry period for regions that could not be placed (no live server).
    pub assign_retry_interval: SimDuration,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            assign_retry_interval: SimDuration::from_secs(1),
        }
    }
}

/// The cluster master. Shared via `Rc`.
pub struct Master {
    sim: Sim,
    net: Rc<Network>,
    node: NodeId,
    cfg: MasterConfig,
    dfs: DfsClient,
    dir: Rc<ServerDirectory>,
    region_map: RefCell<RegionMap>,
    hooks: RefCell<Rc<dyn RecoveryHooks>>,
    handled_failures: RefCell<HashSet<ServerId>>,
    /// Regions awaiting placement (no live server was available), with
    /// their pending recovered edits and failed-server attribution.
    unplaced: RefCell<Vec<(RegionId, Vec<crate::codec::WalRecord>, Option<ServerId>)>>,
    edits_counter: Cell<u64>,
    failovers: Counter,
    /// Failure-event journal (shared cluster journal; disabled until the
    /// cluster wiring installs one via [`Master::set_events_journal`]).
    events: RefCell<Journal>,
    /// The next region id to hand out to a split daughter (ids are never
    /// reused, so a cached id always means the same key range).
    next_region_id: Cell<u32>,
    /// Split intents granted and durable but not yet completed, keyed by
    /// parent region. The master's authoritative in-flight set; the DFS
    /// record at `/split/{parent}` mirrors it for a real deployment's
    /// master restart.
    split_intents: RefCell<HashMap<RegionId, SplitIntent>>,
    intents_persisted: Counter,
    splits_applied: Counter,
    splits_rolled_back: Counter,
    /// The shared store-file registry (installed by the cluster wiring);
    /// intent rollback purges a crashed split's orphaned reference
    /// registrations through it so backing-ref counts cannot leak.
    registry: RefCell<Option<Rc<StoreFileRegistry>>>,
    timers: RefCell<Vec<TimerHandle>>,
    self_weak: RefCell<Weak<Master>>,
}

impl fmt::Debug for Master {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Master")
            .field("node", &self.node)
            .field("failovers", &self.failovers.get())
            .field("map", &*self.region_map.borrow())
            .finish()
    }
}

impl Master {
    /// Creates the master on `node`; `dfs` must be bound to the same node.
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        node: NodeId,
        cfg: MasterConfig,
        dfs: DfsClient,
        dir: Rc<ServerDirectory>,
    ) -> Rc<Master> {
        let master = Rc::new(Master {
            sim: sim.clone(),
            net: Rc::clone(net),
            node,
            cfg,
            dfs,
            dir,
            region_map: RefCell::new(RegionMap::default()),
            hooks: RefCell::new(Rc::new(NoopHooks)),
            handled_failures: RefCell::new(HashSet::new()),
            unplaced: RefCell::new(Vec::new()),
            edits_counter: Cell::new(0),
            failovers: Counter::new(),
            events: RefCell::new(Journal::disabled()),
            next_region_id: Cell::new(0),
            split_intents: RefCell::new(HashMap::new()),
            intents_persisted: Counter::new(),
            splits_applied: Counter::new(),
            splits_rolled_back: Counter::new(),
            registry: RefCell::new(None),
            timers: RefCell::new(Vec::new()),
            self_weak: RefCell::new(Weak::new()),
        });
        *master.self_weak.borrow_mut() = Rc::downgrade(&master);
        master
    }

    /// The machine the master runs on (RPC destination for clients).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the recovery middleware's hooks (also propagated to every
    /// registered server).
    pub fn set_hooks(&self, hooks: Rc<dyn RecoveryHooks>) {
        for id in self.dir.ids() {
            if let Some(s) = self.dir.get(id) {
                s.set_hooks(Rc::clone(&hooks));
            }
        }
        *self.hooks.borrow_mut() = hooks;
    }

    /// Starts failure detection (a watch on the servers' liveness znodes)
    /// and the unplaced-region retry timer.
    pub fn start(self: &Rc<Self>, coord: &CoordClient) {
        let weak = Rc::downgrade(self);
        coord.watch_prefix(
            "/live/servers/",
            move |event| {
                if let cumulo_coord::WatchEvent::Deleted(path) = event {
                    if let Some(master) = weak.upgrade() {
                        if let Some(id) = parse_server_path(&path) {
                            master.handle_server_failure(id);
                        }
                    }
                }
            },
            |_| {},
        );
        let weak = Rc::downgrade(self);
        let timer = every(&self.sim, self.cfg.assign_retry_interval, move || {
            if let Some(master) = weak.upgrade() {
                master.retry_unplaced();
            }
        });
        self.timers.borrow_mut().push(timer);
    }

    /// Assigns every region of `map` round-robin across the registered
    /// servers and opens them (cluster bootstrap). Also wires every
    /// registered server's split coordination back to this master and
    /// seeds the daughter-id allocator above the map's largest id.
    pub fn bootstrap(self: &Rc<Self>, map: RegionMap) {
        self.next_region_id
            .set(map.max_region_id().map(|r| r.0 + 1).unwrap_or(0));
        *self.region_map.borrow_mut() = map;
        for id in self.dir.ids() {
            if let Some(server) = self.dir.get(id) {
                server.set_split_coordinator(Rc::clone(self) as Rc<dyn SplitCoordinator>);
            }
        }
        let descs: Vec<RegionDescriptor> = self.region_map.borrow().regions().to_vec();
        let servers = self.dir.ids();
        assert!(
            !servers.is_empty(),
            "bootstrap requires at least one registered server"
        );
        for (i, desc) in descs.into_iter().enumerate() {
            let target = servers[i % servers.len()];
            self.region_map.borrow_mut().assign(desc.id, target);
            let server = self.dir.get(target).expect("registered");
            let node = server.node();
            self.net.send(self.node, node, 256, move || {
                server.open_region(desc, Vec::new(), Vec::new(), None);
            });
        }
    }

    /// A snapshot of the region map for client caches.
    pub fn snapshot_map(&self) -> RegionMap {
        self.region_map.borrow().clone()
    }

    /// Current map epoch (bumps on each assignment change).
    pub fn map_epoch(&self) -> u64 {
        self.region_map.borrow().epoch()
    }

    /// Number of server failovers processed.
    pub fn failover_count(&self) -> u64 {
        self.failovers.get()
    }

    /// Installs the cluster-shared failure-event journal (disabled until
    /// then; standalone masters and unit tests record nothing).
    pub fn set_events_journal(&self, events: Journal) {
        *self.events.borrow_mut() = events;
    }

    /// Adopts the master's counters into `registry` under `master.*`
    /// keys. Cluster wiring; call once.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("master.failovers", &[], &self.failovers);
        registry.register_counter(
            "master.split.intents_persisted",
            &[],
            &self.intents_persisted,
        );
        registry.register_counter("master.split.applied", &[], &self.splits_applied);
        registry.register_counter("master.split.rolled_back", &[], &self.splits_rolled_back);
    }

    /// Handles a detected server failure: marks its regions offline,
    /// notifies the recovery hooks, splits the failed server's WAL and
    /// reassigns each region with its recovered edits (§2.1 + §3.2).
    ///
    /// Idempotent per server id.
    pub fn handle_server_failure(self: &Rc<Self>, failed: ServerId) {
        if !self.handled_failures.borrow_mut().insert(failed) {
            return;
        }
        self.failovers.inc();
        let regions = self.region_map.borrow().regions_of(failed);
        self.events
            .borrow()
            .record(self.sim.now(), "server.failover", || {
                format!("server={failed} regions={}", regions.len())
            });
        // Roll back any split intent granted to the failed server. This
        // is always safe before the map flip: clients can only address
        // region ids the map has shown them, so no write was ever
        // acknowledged under a daughter id — the parent's WAL and store
        // files still cover everything, and the daughters' orphaned
        // reference markers are deleted below. (Once `split_completed`
        // has flipped the map, the intent is gone and the daughters
        // recover here like any other region.)
        let intents: Vec<SplitIntent> = {
            let mut pending = self.split_intents.borrow_mut();
            regions.iter().filter_map(|r| pending.remove(r)).collect()
        };
        for intent in intents {
            self.rollback_intent(intent);
        }
        {
            let mut map = self.region_map.borrow_mut();
            for r in &regions {
                map.unassign(*r);
            }
        }
        self.hooks.borrow().on_server_failed(failed, &regions);
        if regions.is_empty() {
            return;
        }
        let weak = Rc::downgrade(self);
        split_wal(&self.dfs, &format!("/wal/{failed}"), move |grouped| {
            let Some(master) = weak.upgrade() else { return };
            // WAL records written before an online split are tagged with
            // the parent region id, which may no longer exist — re-route
            // every record against the current map before replay.
            let mut remapped = master.remap_wal_groups(grouped);
            for region in regions {
                let records = remapped.remove(&region).unwrap_or_default();
                master.place_region(region, records, Some(failed));
            }
        });
    }

    /// Rolls a durable-but-uncompleted split intent back: the intent
    /// record and the daughters' orphaned reference markers are deleted;
    /// the region map was never touched.
    fn rollback_intent(&self, intent: SplitIntent) {
        self.splits_rolled_back.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.rollback", || {
                format!("region={} server={}", intent.parent, intent.server)
            });
        self.dfs.delete(&format!("/split/{}", intent.parent));
        for daughter in [intent.bottom, intent.top] {
            // The dead server may have registered reference half-files
            // before crashing; purge them so the parent's physical files
            // do not carry inflated backing counts forever (which would
            // make them undeletable after a later successful split).
            if let Some(registry) = self.registry.borrow().as_ref() {
                registry.purge_references_under(&format!("/store/{daughter}/"));
            }
            let dfs = self.dfs.clone();
            self.dfs
                .clone()
                .list(&format!("/store/{daughter}/"), move |paths| {
                    for p in paths {
                        dfs.delete(&p);
                    }
                });
        }
    }

    /// Installs the shared store-file registry (cluster wiring) so split
    /// rollbacks can purge a crashed server's orphaned reference
    /// registrations. Without one, rollbacks only clean the filesystem.
    pub fn set_registry(&self, registry: Rc<StoreFileRegistry>) {
        *self.registry.borrow_mut() = Some(registry);
    }

    /// Re-groups a failed server's WAL records by the *current* region
    /// map: records tagged with a since-split parent id are partitioned
    /// at the daughter boundary (a record whose region still exists
    /// passes through untouched). Source groups are visited in sorted
    /// region order so the recovered-edits encoding stays byte-identical
    /// across processes.
    fn remap_wal_groups(
        &self,
        grouped: HashMap<RegionId, Vec<WalRecord>>,
    ) -> BTreeMap<RegionId, Vec<WalRecord>> {
        let map = self.region_map.borrow();
        let mut source: Vec<(RegionId, Vec<WalRecord>)> = grouped.into_iter().collect();
        source.sort_by_key(|(id, _)| *id);
        let mut out: BTreeMap<RegionId, Vec<WalRecord>> = BTreeMap::new();
        for (_, records) in source {
            for rec in records {
                if map.descriptor(rec.region).is_some() {
                    // Region ids are never reused, so a live id still
                    // means the same key range: the record stands.
                    out.entry(rec.region).or_default().push(rec);
                    continue;
                }
                let mut per: BTreeMap<RegionId, Vec<Mutation>> = BTreeMap::new();
                for m in rec.mutations {
                    per.entry(map.region_for(&m.row)).or_default().push(m);
                }
                for (region, mutations) in per {
                    out.entry(region).or_default().push(WalRecord {
                        region,
                        ts: rec.ts,
                        mutations,
                    });
                }
            }
        }
        out
    }

    /// Places a region on the live server hosting the fewest regions;
    /// queues it for retry if no server is alive.
    ///
    /// Split WAL records are first persisted as a *recovered-edits file*
    /// in the filesystem (as HBase does), so that a cascading failure of
    /// the new host cannot lose them: the next recovery round re-reads
    /// them. The file is deleted once the region's memstore flushes.
    fn place_region(
        self: &Rc<Self>,
        region: RegionId,
        records: Vec<crate::codec::WalRecord>,
        failed: Option<ServerId>,
    ) {
        if records.is_empty() {
            self.place_region_with_edits(region, failed);
            return;
        }
        let n = self.edits_counter.get();
        self.edits_counter.set(n + 1);
        let path = format!("/recovered/{region}/{n:06}");
        let encoded = crate::codec::encode_wal_batch(&records);
        let weak = self.self_weak.borrow().clone();
        self.dfs.create(&path, move |file| {
            let Ok(file) = file else {
                // Already exists should be impossible (unique counter);
                // a failed create means no datanodes — retry via queue.
                if let Some(master) = weak.upgrade() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                }
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    master.unplaced.borrow_mut().push((region, records, failed));
                    return;
                }
                master.place_region_with_edits(region, failed);
            });
        });
    }

    /// Second placement phase: recovered edits (if any) are durable in the
    /// filesystem; choose a host and open the region there.
    ///
    /// Placement is *load-aware*: the least-loaded live server wins,
    /// where load is the cumulative foreground service time its assigned
    /// regions have charged (ties broken by server id, so placement is
    /// deterministic). Region counts are a poor proxy under skew — one
    /// hot region outweighs many cold ones, and it is exactly the hot
    /// parent's daughters this most often places.
    fn place_region_with_edits(self: &Rc<Self>, region: RegionId, failed: Option<ServerId>) {
        // Each already-assigned region also charges a nominal cost:
        // service loads only move when traffic does, so without this a
        // whole failed server's region set would dogpile onto whichever
        // target momentarily reads least loaded — consecutive placements
        // must see their own weight.
        const ASSIGNED_REGION_COST_NS: u64 = 50_000_000;
        let target = {
            let map = self.region_map.borrow();
            let mut live: Vec<(u64, ServerId)> = self
                .dir
                .live_ids()
                .into_iter()
                .map(|id| {
                    let load = self
                        .dir
                        .get(id)
                        .map(|s| s.service_load_ns())
                        .unwrap_or(u64::MAX);
                    let assigned = map.regions_of(id).len() as u64;
                    (load.saturating_add(assigned * ASSIGNED_REGION_COST_NS), id)
                })
                .collect();
            live.sort_unstable();
            live.first().map(|(_, id)| *id)
        };
        let Some(target) = target else {
            self.unplaced
                .borrow_mut()
                .push((region, Vec::new(), failed));
            return;
        };
        let desc = self
            .region_map
            .borrow()
            .descriptor(region)
            .expect("region exists in the map")
            .clone();
        self.region_map.borrow_mut().assign(region, target);
        self.events
            .borrow()
            .record(self.sim.now(), "region.assign", || {
                format!("region={region} server={target}")
            });
        let server = self.dir.get(target).expect("registered");
        let node = server.node();
        let dfs = self.dfs.clone();
        let net = Rc::clone(&self.net);
        let master_node = self.node;
        // Resolve the region's store files and recovered-edits files from
        // the filesystem namespace (the equivalent of listing the
        // region's HDFS directories).
        dfs.clone()
            .list(&format!("/store/{region}/"), move |paths| {
                dfs.list(&format!("/recovered/{region}/"), move |edits| {
                    net.send(master_node, node, 512, move || {
                        server.open_region(desc, paths, edits, failed);
                    });
                });
            });
    }

    fn retry_unplaced(self: &Rc<Self>) {
        let pending: Vec<_> = self.unplaced.borrow_mut().drain(..).collect();
        for (region, records, failed) in pending {
            self.place_region(region, records, failed);
        }
    }

    /// Client RPC: current assignments (used to refresh location caches).
    pub fn get_assignments(&self) -> (u64, HashMap<RegionId, ServerId>) {
        let map = self.region_map.borrow();
        (map.epoch(), map.assignments().clone())
    }

    // ------------------------------------------------------------------
    // Online region splits (master side; see `SplitCoordinator`)
    // ------------------------------------------------------------------

    /// Split intents made durable in the filesystem.
    pub fn split_intents_persisted(&self) -> u64 {
        self.intents_persisted.get()
    }

    /// Splits applied to the region map.
    pub fn splits_applied(&self) -> u64 {
        self.splits_applied.get()
    }

    /// Split intents rolled back (server failed mid-split, marker writes
    /// failed, or the intent could not be persisted).
    pub fn splits_rolled_back(&self) -> u64 {
        self.splits_rolled_back.get()
    }

    /// Whether a split intent is currently outstanding for `region`.
    pub fn split_intent_outstanding(&self, region: RegionId) -> bool {
        self.split_intents.borrow().contains_key(&region)
    }

    /// Validates a server's split request; on success persists the
    /// intent and, once durable, tells the server to execute.
    fn handle_split_request(self: &Rc<Self>, server: ServerId, region: RegionId, split_key: Bytes) {
        let valid = {
            let map = self.region_map.borrow();
            let assigned_here = map.server_for(region) == Some(server);
            let inside = map
                .descriptor(region)
                .map(|d| {
                    split_key[..] > d.start[..]
                        && d.end.as_ref().map(|e| &split_key < e).unwrap_or(true)
                })
                .unwrap_or(false);
            assigned_here
                && inside
                && !self.handled_failures.borrow().contains(&server)
                && !self.split_intents.borrow().contains_key(&region)
        };
        if !valid {
            self.deny_split(server, region);
            return;
        }
        let bottom = RegionId(self.next_region_id.get());
        let top = RegionId(self.next_region_id.get() + 1);
        self.next_region_id.set(self.next_region_id.get() + 2);
        let intent = SplitIntent {
            parent: region,
            split_key: split_key.clone(),
            bottom,
            top,
            server,
        };
        // Record in memory first so a racing second request is denied;
        // the DFS record is written before the server may execute — the
        // durability point the crash-window analysis hinges on.
        self.split_intents
            .borrow_mut()
            .insert(region, intent.clone());
        let encoded = intent.encode();
        let weak = Rc::downgrade(self);
        self.dfs.create(&format!("/split/{region}"), move |file| {
            let Some(master) = weak.upgrade() else { return };
            let Ok(file) = file else {
                // Create can fail with AlreadyExists when an earlier
                // attempt's append died half-way and left the file
                // behind; delete it so the region is not permanently
                // split-blocked, then deny (the server re-requests).
                master.dfs.delete(&format!("/split/{region}"));
                master.split_intents.borrow_mut().remove(&region);
                master.deny_split(server, region);
                return;
            };
            let weak = weak.clone();
            file.append(encoded, move |result| {
                let Some(master) = weak.upgrade() else { return };
                if result.is_err() {
                    // The created-but-unwritten intent file would block
                    // every future split of this region (AlreadyExists).
                    master.dfs.delete(&format!("/split/{region}"));
                    master.split_intents.borrow_mut().remove(&region);
                    master.deny_split(server, region);
                    return;
                }
                master.intents_persisted.inc();
                master
                    .events
                    .borrow()
                    .record(master.sim.now(), "split.persisted", || {
                        format!("region={region} server={server} bottom={bottom} top={top}")
                    });
                // The server may have died while the intent was being
                // written; its failover already rolled the intent back.
                if !master.split_intents.borrow().contains_key(&region) {
                    return;
                }
                let Some(target) = master.dir.get(server) else {
                    return;
                };
                let node = target.node();
                master.net.send(master.node, node, 96, move || {
                    target.execute_split(region, split_key, bottom, top);
                });
            });
        });
    }

    fn deny_split(&self, server: ServerId, region: RegionId) {
        let Some(target) = self.dir.get(server) else {
            return;
        };
        let node = target.node();
        self.net.send(self.node, node, 48, move || {
            target.split_request_denied(region);
        });
    }
}

impl SplitCoordinator for Master {
    fn node(&self) -> NodeId {
        self.node
    }

    fn request_split(&self, server: ServerId, region: RegionId, split_key: Bytes) {
        if let Some(master) = self.self_weak.borrow().upgrade() {
            master.handle_split_request(server, region, split_key);
        }
    }

    fn split_completed(&self, server: ServerId, parent: RegionId) {
        // A failover that raced ahead has already rolled the intent back
        // (and this message came from a now-dead server): ignore.
        let intent = {
            let intents = self.split_intents.borrow();
            match intents.get(&parent) {
                Some(i) if i.server == server => Some(i.clone()),
                _ => None,
            }
        };
        let Some(intent) = intent else { return };
        if self.handled_failures.borrow().contains(&server) {
            return;
        }
        let applied = self.region_map.borrow_mut().apply_split(
            parent,
            &intent.split_key,
            intent.bottom,
            intent.top,
        );
        if !applied {
            return;
        }
        self.split_intents.borrow_mut().remove(&parent);
        self.splits_applied.inc();
        self.events
            .borrow()
            .record(self.sim.now(), "split.applied", || {
                format!(
                    "region={parent} bottom={} top={}",
                    intent.bottom, intent.top
                )
            });
        self.dfs.delete(&format!("/split/{parent}"));
        self.hooks
            .borrow()
            .on_region_split(parent, intent.bottom, intent.top);
    }

    fn split_aborted(&self, server: ServerId, parent: RegionId) {
        let intent = {
            let mut intents = self.split_intents.borrow_mut();
            match intents.get(&parent) {
                Some(i) if i.server == server => intents.remove(&parent),
                _ => None,
            }
        };
        if let Some(intent) = intent {
            self.rollback_intent(intent);
        }
    }
}

fn parse_server_path(path: &str) -> Option<ServerId> {
    let name = path.rsplit('/').next()?;
    let digits = name.strip_prefix("rs")?;
    digits.parse().ok().map(ServerId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_server_paths() {
        assert_eq!(parse_server_path("/live/servers/rs3"), Some(ServerId(3)));
        assert_eq!(parse_server_path("/live/servers/rs12"), Some(ServerId(12)));
        assert_eq!(parse_server_path("/live/servers/garbage"), None);
        assert_eq!(parse_server_path("/live/servers/rsX"), None);
    }
}
