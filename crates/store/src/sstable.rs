//! Immutable store files (HFile/SSTable equivalents) and the cluster-wide
//! store-file registry.
//!
//! A memstore flush writes its contents as a sorted, immutable store file
//! into the distributed filesystem. Readers locate the newest version ≤
//! their snapshot with binary search.
//!
//! ## Simulation note: the registry
//!
//! In HBase, any region server can read any store file block from HDFS. We
//! model the *latency* of those block reads in the region server's service
//! time (cache-miss penalty) but serve the *bytes* from a shared
//! [`StoreFileRegistry`] keyed by file path, populated only after the DFS
//! write of the file has been acknowledged. Durability stays honest — a
//! file enters the registry only once it is really replicated — while
//! avoiding the unrealistic cost of re-reading whole files per lookup.
//! Liveness stays honest too: the read path checks that at least one
//! replica datanode of the file is alive before serving from the registry.

use crate::codec::{decode_mutation, encode_mutation, DecodeError, Decoder, Encoder};
use crate::memstore::{MemStore, VersionedValue};
use crate::types::{Mutation, MutationKind, RegionId, Timestamp};
use bytes::Bytes;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// One sorted immutable store file's contents.
pub struct StoreFileData {
    region: RegionId,
    path: String,
    /// Sorted by (row, column, descending ts) — same order as a memstore.
    entries: Vec<(Bytes, Bytes, Timestamp, Option<Bytes>)>,
    total_bytes: usize,
}

impl fmt::Debug for StoreFileData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreFileData")
            .field("region", &self.region)
            .field("path", &self.path)
            .field("entries", &self.entries.len())
            .field("bytes", &self.total_bytes)
            .finish()
    }
}

/// One versioned cell as stored in a file: `(row, column, ts, value)`,
/// with `None` marking a delete tombstone.
pub type StoreFileEntry = (Bytes, Bytes, Timestamp, Option<Bytes>);

impl StoreFileData {
    /// Builds a store file from a (snapshot) memstore.
    pub fn from_memstore(
        region: RegionId,
        path: impl Into<String>,
        ms: &MemStore,
    ) -> StoreFileData {
        let entries: Vec<_> = ms
            .iter()
            .map(|(r, c, ts, v)| (r.clone(), c.clone(), ts, v.clone()))
            .collect();
        StoreFileData::from_sorted_entries(region, path, entries)
    }

    /// Builds a store file from entries already in `(row, column,
    /// descending ts)` order — the compaction merge path.
    ///
    /// # Panics
    ///
    /// Debug-asserts the required ordering.
    pub fn from_sorted_entries(
        region: RegionId,
        path: impl Into<String>,
        entries: Vec<StoreFileEntry>,
    ) -> StoreFileData {
        debug_assert!(
            entries.windows(2).all(|w| {
                let a = (&w[0].0, &w[0].1, !w[0].2 .0);
                let b = (&w[1].0, &w[1].1, !w[1].2 .0);
                a < b
            }),
            "entries must be strictly sorted by (row, column, descending ts)"
        );
        let total_bytes = entries
            .iter()
            .map(|(r, c, _, v)| r.len() + c.len() + v.as_ref().map(Bytes::len).unwrap_or(0) + 24)
            .sum();
        StoreFileData {
            region,
            path: path.into(),
            entries,
            total_bytes,
        }
    }

    /// Iterates all stored versions in `(row, column, descending ts)`
    /// order (the order scans and the compaction merge consume).
    pub fn entries(&self) -> impl Iterator<Item = &StoreFileEntry> + '_ {
        self.entries.iter()
    }

    /// The region this file belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The DFS path the file was written to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file stores nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate on-disk size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The newest version of `(row, column)` at or before `snapshot`.
    pub fn get(&self, row: &[u8], column: &[u8], snapshot: Timestamp) -> Option<VersionedValue> {
        // First entry with key >= (row, column, inv(snapshot)) in the
        // (row, col, desc-ts) order.
        let idx = self
            .entries
            .partition_point(|(r, c, ts, _)| (&r[..], &c[..], !ts.0) < (row, column, !snapshot.0));
        let (r, c, ts, v) = self.entries.get(idx)?;
        if r == row && c == column {
            Some(VersionedValue {
                ts: *ts,
                value: v.clone(),
            })
        } else {
            None
        }
    }

    /// Latest version ≤ `snapshot` per cell for rows in `[start, end)`.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        snapshot: Timestamp,
    ) -> Vec<(Bytes, Bytes, VersionedValue)> {
        let mut out: Vec<(Bytes, Bytes, VersionedValue)> = Vec::new();
        for (r, c, ts, v) in &self.entries {
            if *ts > snapshot || &r[..] < start {
                continue;
            }
            if let Some(end) = end {
                if &r[..] >= end {
                    continue;
                }
            }
            if let Some((lr, lc, _)) = out.last() {
                if lr == r && lc == c {
                    continue;
                }
            }
            out.push((
                r.clone(),
                c.clone(),
                VersionedValue {
                    ts: *ts,
                    value: v.clone(),
                },
            ));
        }
        out
    }

    /// Serializes the file for the DFS write.
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u32(self.region.0);
        enc.put_u32(self.entries.len() as u32);
        for (r, c, ts, v) in &self.entries {
            let kind = match v {
                Some(v) => MutationKind::Put(v.clone()),
                None => MutationKind::Delete,
            };
            let m = Mutation {
                row: r.clone(),
                column: c.clone(),
                kind,
            };
            encode_mutation(&mut enc, &m);
            enc.put_u64(ts.0);
        }
        enc.finish()
    }

    /// Parses a file previously produced by [`StoreFileData::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or corrupt input.
    pub fn decode(path: impl Into<String>, buf: &[u8]) -> Result<StoreFileData, DecodeError> {
        let mut dec = Decoder::new(buf);
        let region = RegionId(dec.get_u32()?);
        let n = dec.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        let mut total_bytes = 0;
        for _ in 0..n {
            let m = decode_mutation(&mut dec)?;
            let ts = Timestamp(dec.get_u64()?);
            let v = match m.kind {
                MutationKind::Put(v) => Some(v),
                MutationKind::Delete => None,
            };
            total_bytes +=
                m.row.len() + m.column.len() + v.as_ref().map(Bytes::len).unwrap_or(0) + 24;
            entries.push((m.row, m.column, ts, v));
        }
        Ok(StoreFileData {
            region,
            path: path.into(),
            entries,
            total_bytes,
        })
    }
}

/// Cluster-wide map from store-file path to parsed contents (see the
/// module docs for why this exists).
#[derive(Default)]
pub struct StoreFileRegistry {
    files: RefCell<HashMap<String, Rc<StoreFileData>>>,
}

impl fmt::Debug for StoreFileRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreFileRegistry")
            .field("files", &self.files.borrow().len())
            .finish()
    }
}

impl StoreFileRegistry {
    /// Creates an empty registry.
    pub fn new() -> Rc<StoreFileRegistry> {
        Rc::new(StoreFileRegistry::default())
    }

    /// Registers a file (call only after its DFS write was acknowledged).
    pub fn insert(&self, data: Rc<StoreFileData>) {
        self.files.borrow_mut().insert(data.path().to_owned(), data);
    }

    /// Looks up a file by path.
    pub fn get(&self, path: &str) -> Option<Rc<StoreFileData>> {
        self.files.borrow().get(path).cloned()
    }

    /// Unregisters a file (when compaction retires it), returning whether
    /// it was present. Existing readers holding the `Rc` are unaffected;
    /// the path just stops resolving for new opens.
    pub fn remove(&self, path: &str) -> bool {
        self.files.borrow_mut().remove(path).is_some()
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn sample() -> StoreFileData {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c"), Timestamp(10), Some(b("a10")));
        ms.apply(b("a"), b("c"), Timestamp(20), Some(b("a20")));
        ms.apply(b("b"), b("c"), Timestamp(15), None); // tombstone
        ms.apply(b("c"), b("d"), Timestamp(5), Some(b("c5")));
        StoreFileData::from_memstore(RegionId(1), "/store/r1/0", &ms)
    }

    #[test]
    fn get_respects_snapshot() {
        let sf = sample();
        assert_eq!(sf.get(b"a", b"c", Timestamp(9)), None);
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(10)).unwrap().value,
            Some(b("a10"))
        );
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(19)).unwrap().value,
            Some(b("a10"))
        );
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(20)).unwrap().value,
            Some(b("a20"))
        );
        assert_eq!(sf.get(b"b", b"c", Timestamp(20)).unwrap().value, None); // tombstone
        assert_eq!(sf.get(b"zz", b"c", Timestamp(20)), None);
        assert_eq!(
            sf.get(b"c", b"d", Timestamp(5)).unwrap().value,
            Some(b("c5"))
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let sf = sample();
        let encoded = sf.encode();
        let back = StoreFileData::decode("/store/r1/0", &encoded).expect("decode");
        assert_eq!(back.region(), RegionId(1));
        assert_eq!(back.len(), sf.len());
        assert_eq!(
            back.get(b"a", b"c", Timestamp(20)),
            sf.get(b"a", b"c", Timestamp(20))
        );
        assert_eq!(
            back.get(b"b", b"c", Timestamp(20)),
            sf.get(b"b", b"c", Timestamp(20))
        );
        assert!(StoreFileData::decode("/x", &encoded[..3]).is_err());
    }

    #[test]
    fn scan_filters_range_and_snapshot() {
        let sf = sample();
        let hits = sf.scan(b"a", Some(b"c"), Timestamp(50));
        assert_eq!(hits.len(), 2); // a (latest=20) and b (tombstone)
        assert_eq!(hits[0].2.ts, Timestamp(20));
        let hits = sf.scan(b"a", None, Timestamp(5));
        assert_eq!(hits.len(), 1); // only c@5 visible
        assert_eq!(hits[0].0, b("c"));
    }

    #[test]
    fn registry_roundtrip() {
        let reg = StoreFileRegistry::new();
        assert!(reg.is_empty());
        let sf = Rc::new(sample());
        reg.insert(Rc::clone(&sf));
        assert_eq!(reg.len(), 1);
        let got = reg.get("/store/r1/0").expect("registered");
        assert_eq!(got.len(), sf.len());
        assert!(reg.get("/other").is_none());
    }

    #[test]
    fn registry_remove_unregisters() {
        let reg = StoreFileRegistry::new();
        let sf = Rc::new(sample());
        reg.insert(Rc::clone(&sf));
        assert!(!reg.remove("/not-there"));
        assert!(reg.remove("/store/r1/0"));
        assert!(reg.get("/store/r1/0").is_none());
        assert!(reg.is_empty());
        // The held Rc still reads fine after removal.
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(20)).unwrap().value,
            Some(b("a20"))
        );
    }

    #[test]
    fn from_sorted_entries_matches_memstore_build() {
        let via_ms = sample();
        let entries: Vec<_> = via_ms.entries().cloned().collect();
        let direct = StoreFileData::from_sorted_entries(RegionId(1), "/store/r1/0", entries);
        assert_eq!(direct.len(), via_ms.len());
        assert_eq!(direct.total_bytes(), via_ms.total_bytes());
        assert_eq!(
            direct.get(b"a", b"c", Timestamp(20)),
            via_ms.get(b"a", b"c", Timestamp(20))
        );
    }

    #[test]
    fn empty_file() {
        let ms = MemStore::new();
        let sf = StoreFileData::from_memstore(RegionId(0), "/f", &ms);
        assert!(sf.is_empty());
        assert_eq!(sf.get(b"a", b"c", Timestamp::MAX), None);
        let back = StoreFileData::decode("/f", &sf.encode()).unwrap();
        assert!(back.is_empty());
    }
}
