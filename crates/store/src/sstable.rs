//! Immutable store files (HFile/SSTable equivalents) and the cluster-wide
//! store-file registry.
//!
//! A memstore flush writes its contents as a sorted, immutable store file
//! into the distributed filesystem. Readers locate the newest version ≤
//! their snapshot with binary search.
//!
//! ## Read-path service model
//!
//! Between compactions a region accumulates store files, and the newest
//! visible version of a cell can live in any of them. What a point get
//! *pays* for, in handler service time, is governed by per-file metadata
//! built here at flush time (and rebuilt by compaction for merge
//! outputs):
//!
//! * **Key-range pruning** — every file records its min/max row key
//!   ([`StoreFileData::key_range`]). A file whose range does not cover
//!   the requested row costs *nothing*: the range check is an in-memory
//!   metadata comparison.
//! * **Bloom-filter probe** — files whose range covers the row are probed
//!   against a per-file [`BloomFilter`] over `(row, column)` pairs. Each
//!   probe costs a small `filter_probe_service` term (filters are not
//!   free), and a negative probe definitively excludes the file.
//! * **Consultation** — only files the filter cannot exclude are
//!   consulted, each charging the `storefile_read_service`
//!   read-amplification term (beyond the first consulted file). A
//!   consulted file that turns out not to hold the key at all is a
//!   *false positive*, surfaced through the server's `FilterStats`.
//!
//! Scans use key-range pruning only: a scan touches many rows, so a
//! per-`(row, column)` filter cannot exclude a file for it.
//!
//! ## Simulation note: the registry
//!
//! In HBase, any region server can read any store file block from HDFS. We
//! model the *latency* of those block reads in the region server's service
//! time (cache-miss penalty) but serve the *bytes* from a shared
//! [`StoreFileRegistry`] keyed by file path, populated only after the DFS
//! write of the file has been acknowledged. Durability stays honest — a
//! file enters the registry only once it is really replicated — while
//! avoiding the unrealistic cost of re-reading whole files per lookup.
//! Liveness stays honest too: the read path checks that at least one
//! replica datanode of the file is alive before serving from the registry.

use crate::bloom::BloomFilter;
use crate::codec::{decode_mutation, encode_mutation, DecodeError, Decoder, Encoder};
use crate::memstore::{MemStore, VersionedValue};
use crate::types::{Mutation, MutationKind, RegionId, Timestamp};
use bytes::Bytes;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// One sorted immutable store file's contents — either a *physical* file
/// (a flush or compaction output, owning its entries) or a *reference
/// half-file* created by an online region split, which shares the parent
/// file's entry array and clips it to the daughter's key range (see
/// [`StoreFileData::reference`]).
pub struct StoreFileData {
    region: RegionId,
    path: String,
    /// Sorted by (row, column, descending ts) — same order as a memstore.
    /// Shared (`Rc`) so a split's reference half-files are O(metadata):
    /// they alias the parent's array and narrow `[lo, hi)`.
    entries: Rc<Vec<(Bytes, Bytes, Timestamp, Option<Bytes>)>>,
    /// Visible slice bounds into `entries` (`0..len` for physical files).
    lo: usize,
    hi: usize,
    total_bytes: usize,
    /// Min/max row key stored (`None` for an empty file); the read path's
    /// free range-pruning check.
    key_range: Option<(Bytes, Bytes)>,
    /// Membership filter over the file's distinct `(row, column)` pairs.
    /// Reference files share the parent's filter (it may answer `true`
    /// for keys clipped into the sibling daughter — an ordinary false
    /// positive).
    bloom: Rc<BloomFilter>,
    /// For a reference half-file: the DFS path of the parent file that
    /// physically holds the bytes (replica-liveness checks target it, and
    /// it may only be deleted once every reference is rewritten).
    backing: Option<String>,
}

impl fmt::Debug for StoreFileData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreFileData")
            .field("region", &self.region)
            .field("path", &self.path)
            .field("entries", &self.entries.len())
            .field("bytes", &self.total_bytes)
            .field("filter_bytes", &self.bloom.approx_bytes())
            .finish()
    }
}

/// One versioned cell as stored in a file: `(row, column, ts, value)`,
/// with `None` marking a delete tombstone.
pub type StoreFileEntry = (Bytes, Bytes, Timestamp, Option<Bytes>);

/// Min/max row key over sorted entries (`None` when empty).
fn key_range_of(entries: &[StoreFileEntry]) -> Option<(Bytes, Bytes)> {
    match (entries.first(), entries.last()) {
        (Some((min, ..)), Some((max, ..))) => Some((min.clone(), max.clone())),
        _ => None,
    }
}

/// Builds the file's bloom filter over its distinct `(row, column)`
/// pairs. Entries are sorted, so distinct pairs are adjacent.
fn build_bloom(entries: &[StoreFileEntry]) -> BloomFilter {
    let mut last: Option<(&Bytes, &Bytes)> = None;
    let distinct = entries.iter().filter(move |(r, c, ..)| {
        let fresh = last != Some((r, c));
        last = Some((r, c));
        fresh
    });
    BloomFilter::build(distinct.map(|(r, c, ..)| (&r[..], &c[..])))
}

impl StoreFileData {
    /// Builds a store file from a (snapshot) memstore.
    pub fn from_memstore(
        region: RegionId,
        path: impl Into<String>,
        ms: &MemStore,
    ) -> StoreFileData {
        let entries: Vec<_> = ms
            .iter()
            .map(|(r, c, ts, v)| (r.clone(), c.clone(), ts, v.clone()))
            .collect();
        StoreFileData::from_sorted_entries(region, path, entries)
    }

    /// Builds a store file from entries already in `(row, column,
    /// descending ts)` order — the compaction merge path.
    ///
    /// # Panics
    ///
    /// Debug-asserts the required ordering.
    pub fn from_sorted_entries(
        region: RegionId,
        path: impl Into<String>,
        entries: Vec<StoreFileEntry>,
    ) -> StoreFileData {
        debug_assert!(
            entries.windows(2).all(|w| {
                let a = (&w[0].0, &w[0].1, !w[0].2 .0);
                let b = (&w[1].0, &w[1].1, !w[1].2 .0);
                a < b
            }),
            "entries must be strictly sorted by (row, column, descending ts)"
        );
        let total_bytes = entries
            .iter()
            .map(|(r, c, _, v)| r.len() + c.len() + v.as_ref().map(Bytes::len).unwrap_or(0) + 24)
            .sum();
        let bloom = build_bloom(&entries);
        let hi = entries.len();
        StoreFileData {
            region,
            path: path.into(),
            key_range: key_range_of(&entries),
            lo: 0,
            hi,
            total_bytes,
            bloom: Rc::new(bloom),
            entries: Rc::new(entries),
            backing: None,
        }
    }

    /// Builds a reference half-file over `parent` for an online region
    /// split: the result aliases the parent's entry array clipped to rows
    /// in `[start, end)` (two `partition_point` calls — O(log n), no data
    /// copy) and shares the parent's bloom filter. The reference's
    /// [`StoreFileData::backing_path`] names the parent file, whose
    /// replicas actually hold the bytes; the parent file must outlive
    /// every reference (the daughter's first compaction covering the
    /// reference rewrites it into a physical file).
    ///
    /// Returns `None` when no row of the parent falls inside the range
    /// (nothing to reference).
    pub fn reference(
        parent: &Rc<StoreFileData>,
        region: RegionId,
        path: impl Into<String>,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Option<StoreFileData> {
        let all = &parent.entries[..];
        // Clip within the parent's own visible window (a reference over a
        // reference composes — daughters can split again).
        let lo = parent.lo + all[parent.lo..parent.hi].partition_point(|(r, ..)| &r[..] < start);
        let hi = match end {
            Some(end) => {
                parent.lo + all[parent.lo..parent.hi].partition_point(|(r, ..)| &r[..] < end)
            }
            None => parent.hi,
        };
        if lo >= hi {
            return None;
        }
        let slice = &all[lo..hi];
        let total_bytes = slice
            .iter()
            .map(|(r, c, _, v)| r.len() + c.len() + v.as_ref().map(Bytes::len).unwrap_or(0) + 24)
            .sum();
        Some(StoreFileData {
            region,
            path: path.into(),
            key_range: key_range_of(slice),
            lo,
            hi,
            total_bytes,
            bloom: Rc::clone(&parent.bloom),
            entries: Rc::clone(&parent.entries),
            backing: Some(
                parent
                    .backing
                    .clone()
                    .unwrap_or_else(|| parent.path.clone()),
            ),
        })
    }

    /// The visible entry slice (the whole array for physical files, the
    /// clipped window for reference half-files).
    fn slice(&self) -> &[StoreFileEntry] {
        &self.entries[self.lo..self.hi]
    }

    /// Iterates all stored versions in `(row, column, descending ts)`
    /// order (the order scans and the compaction merge consume).
    pub fn entries(&self) -> impl Iterator<Item = &StoreFileEntry> + '_ {
        self.slice().iter()
    }

    /// Whether this is a reference half-file over another file's bytes.
    pub fn is_reference(&self) -> bool {
        self.backing.is_some()
    }

    /// The DFS path whose replicas physically hold this file's bytes: the
    /// parent file for a reference half-file, the file itself otherwise.
    pub fn backing_path(&self) -> &str {
        self.backing.as_deref().unwrap_or(&self.path)
    }

    /// The row key of the middle visible entry — the split-point heuristic
    /// (HBase picks the largest store file's index midkey the same way).
    /// `None` for an empty file.
    pub fn mid_row(&self) -> Option<Bytes> {
        let slice = self.slice();
        slice.get(slice.len() / 2).map(|(r, ..)| r.clone())
    }

    /// The region this file belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The DFS path the file was written to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the file stores nothing.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Approximate on-disk size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The min/max row key stored, or `None` for an empty file.
    pub fn key_range(&self) -> Option<(&[u8], &[u8])> {
        self.key_range.as_ref().map(|(a, b)| (&a[..], &b[..]))
    }

    /// Whether `row` falls inside the file's min/max row range — the free
    /// pruning check the read path applies before any filter probe.
    pub fn row_in_range(&self, row: &[u8]) -> bool {
        match &self.key_range {
            Some((min, max)) => &min[..] <= row && row <= &max[..],
            None => false,
        }
    }

    /// Whether the file's row range intersects the scan range
    /// `[start, end)`.
    pub fn range_overlaps(&self, start: &[u8], end: Option<&[u8]>) -> bool {
        match &self.key_range {
            Some((min, max)) => &max[..] >= start && end.map(|e| &min[..] < e).unwrap_or(true),
            None => false,
        }
    }

    /// Probes the file's bloom filter for `(row, column)`. `false` is
    /// definitive; `true` may be a false positive.
    pub fn filter_may_contain(&self, row: &[u8], column: &[u8]) -> bool {
        self.bloom.may_contain(row, column)
    }

    /// Exact membership check: whether *any* version of `(row, column)`
    /// is stored, regardless of snapshot. Used to classify filter
    /// outcomes (false positives / negatives), not to serve reads.
    pub fn contains_key(&self, row: &[u8], column: &[u8]) -> bool {
        let slice = self.slice();
        let idx = slice.partition_point(|(r, c, ..)| (&r[..], &c[..]) < (row, column));
        matches!(slice.get(idx), Some((r, c, ..)) if r == row && c == column)
    }

    /// Bytes of filter metadata (the bloom bit array) this file carries.
    pub fn filter_bytes(&self) -> usize {
        self.bloom.approx_bytes()
    }

    /// The newest version of `(row, column)` at or before `snapshot`.
    pub fn get(&self, row: &[u8], column: &[u8], snapshot: Timestamp) -> Option<VersionedValue> {
        // First entry with key >= (row, column, inv(snapshot)) in the
        // (row, col, desc-ts) order.
        let slice = self.slice();
        let idx = slice
            .partition_point(|(r, c, ts, _)| (&r[..], &c[..], !ts.0) < (row, column, !snapshot.0));
        let (r, c, ts, v) = slice.get(idx)?;
        if r == row && c == column {
            Some(VersionedValue {
                ts: *ts,
                value: v.clone(),
            })
        } else {
            None
        }
    }

    /// Latest version ≤ `snapshot` per cell for rows in `[start, end)`
    /// (`end` exclusive, `None` = unbounded) — including tombstones,
    /// which the region server's merge needs so a newer file-borne
    /// delete shadows older values. One file's slice of a single
    /// region's scan page; cross-region merging happens in the client.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        snapshot: Timestamp,
    ) -> Vec<(Bytes, Bytes, VersionedValue)> {
        let mut out: Vec<(Bytes, Bytes, VersionedValue)> = Vec::new();
        for (r, c, ts, v) in self.slice() {
            if *ts > snapshot || &r[..] < start {
                continue;
            }
            if let Some(end) = end {
                if &r[..] >= end {
                    continue;
                }
            }
            if let Some((lr, lc, _)) = out.last() {
                if lr == r && lc == c {
                    continue;
                }
            }
            out.push((
                r.clone(),
                c.clone(),
                VersionedValue {
                    ts: *ts,
                    value: v.clone(),
                },
            ));
        }
        out
    }

    /// Serializes the file for the DFS write.
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u32(self.region.0);
        enc.put_u32(self.len() as u32);
        for (r, c, ts, v) in self.slice() {
            let kind = match v {
                Some(v) => MutationKind::Put(v.clone()),
                None => MutationKind::Delete,
            };
            let m = Mutation {
                row: r.clone(),
                column: c.clone(),
                kind,
            };
            encode_mutation(&mut enc, &m);
            enc.put_u64(ts.0);
        }
        // Filter metadata trails the entries so the deterministic bloom
        // bits survive the DFS round trip (the row range is derivable
        // from the sorted entries and is not encoded).
        self.bloom.encode(&mut enc);
        enc.finish()
    }

    /// Parses a file previously produced by [`StoreFileData::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or corrupt input.
    pub fn decode(path: impl Into<String>, buf: &[u8]) -> Result<StoreFileData, DecodeError> {
        let mut dec = Decoder::new(buf);
        let region = RegionId(dec.get_u32()?);
        let n = dec.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        let mut total_bytes = 0;
        for _ in 0..n {
            let m = decode_mutation(&mut dec)?;
            let ts = Timestamp(dec.get_u64()?);
            let v = match m.kind {
                MutationKind::Put(v) => Some(v),
                MutationKind::Delete => None,
            };
            total_bytes +=
                m.row.len() + m.column.len() + v.as_ref().map(Bytes::len).unwrap_or(0) + 24;
            entries.push((m.row, m.column, ts, v));
        }
        let bloom = BloomFilter::decode(&mut dec)?;
        let hi = entries.len();
        Ok(StoreFileData {
            region,
            path: path.into(),
            key_range: key_range_of(&entries),
            lo: 0,
            hi,
            total_bytes,
            bloom: Rc::new(bloom),
            entries: Rc::new(entries),
            backing: None,
        })
    }
}

/// Cluster-wide map from store-file path to parsed contents (see the
/// module docs for why this exists).
///
/// The registry also tracks how many split reference half-files point at
/// each physical parent file ([`StoreFileRegistry::add_backing_ref`]): a
/// parent file may only be deleted once the last daughter reference to it
/// has been compacted away, and that count is cluster-level metadata (both
/// daughters may have failed over to different servers by then).
#[derive(Default)]
pub struct StoreFileRegistry {
    files: RefCell<HashMap<String, Rc<StoreFileData>>>,
    /// Outstanding reference half-files per backing (parent) file path.
    backing_refs: RefCell<HashMap<String, u32>>,
}

impl fmt::Debug for StoreFileRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreFileRegistry")
            .field("files", &self.files.borrow().len())
            .finish()
    }
}

impl StoreFileRegistry {
    /// Creates an empty registry.
    pub fn new() -> Rc<StoreFileRegistry> {
        Rc::new(StoreFileRegistry::default())
    }

    /// Registers a file (call only after its DFS write was acknowledged).
    pub fn insert(&self, data: Rc<StoreFileData>) {
        self.files.borrow_mut().insert(data.path().to_owned(), data);
    }

    /// Looks up a file by path.
    pub fn get(&self, path: &str) -> Option<Rc<StoreFileData>> {
        self.files.borrow().get(path).cloned()
    }

    /// Unregisters a file (when compaction retires it), returning whether
    /// it was present. Existing readers holding the `Rc` are unaffected;
    /// the path just stops resolving for new opens.
    pub fn remove(&self, path: &str) -> bool {
        self.files.borrow_mut().remove(path).is_some()
    }

    /// Records one more reference half-file over the physical file at
    /// `backing` (called when a split creates a daughter reference).
    pub fn add_backing_ref(&self, backing: &str) {
        *self
            .backing_refs
            .borrow_mut()
            .entry(backing.to_owned())
            .or_insert(0) += 1;
    }

    /// Releases one reference over `backing`; returns `true` when that
    /// was the last one (the physical file may now be deleted).
    pub fn release_backing_ref(&self, backing: &str) -> bool {
        let mut refs = self.backing_refs.borrow_mut();
        match refs.get_mut(backing) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                refs.remove(backing);
                true
            }
            None => false,
        }
    }

    /// Outstanding reference half-files over `backing`.
    pub fn backing_ref_count(&self, backing: &str) -> u32 {
        self.backing_refs
            .borrow()
            .get(backing)
            .copied()
            .unwrap_or(0)
    }

    /// Unregisters every *reference* half-file whose path starts with
    /// `prefix` (a rolled-back split daughter's directory), releasing
    /// each one's hold on its backing file, and returns how many were
    /// purged. The backing physical files themselves are left alone —
    /// the parent region, recovered elsewhere, still serves them. Without
    /// this cleanup a crash mid-split would leak inflated backing counts
    /// and the parent's files could never be deleted after a later
    /// successful split.
    pub fn purge_references_under(&self, prefix: &str) -> usize {
        let mut victims: Vec<(String, String)> = self
            .files
            .borrow()
            .iter()
            .filter(|(p, d)| p.starts_with(prefix) && d.is_reference())
            .map(|(p, d)| (p.clone(), d.backing_path().to_owned()))
            .collect();
        victims.sort();
        for (path, backing) in &victims {
            self.files.borrow_mut().remove(path);
            let _ = self.release_backing_ref(backing);
        }
        victims.len()
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn sample() -> StoreFileData {
        let mut ms = MemStore::new();
        ms.apply(b("a"), b("c"), Timestamp(10), Some(b("a10")));
        ms.apply(b("a"), b("c"), Timestamp(20), Some(b("a20")));
        ms.apply(b("b"), b("c"), Timestamp(15), None); // tombstone
        ms.apply(b("c"), b("d"), Timestamp(5), Some(b("c5")));
        StoreFileData::from_memstore(RegionId(1), "/store/r1/0", &ms)
    }

    #[test]
    fn get_respects_snapshot() {
        let sf = sample();
        assert_eq!(sf.get(b"a", b"c", Timestamp(9)), None);
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(10)).unwrap().value,
            Some(b("a10"))
        );
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(19)).unwrap().value,
            Some(b("a10"))
        );
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(20)).unwrap().value,
            Some(b("a20"))
        );
        assert_eq!(sf.get(b"b", b"c", Timestamp(20)).unwrap().value, None); // tombstone
        assert_eq!(sf.get(b"zz", b"c", Timestamp(20)), None);
        assert_eq!(
            sf.get(b"c", b"d", Timestamp(5)).unwrap().value,
            Some(b("c5"))
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let sf = sample();
        let encoded = sf.encode();
        let back = StoreFileData::decode("/store/r1/0", &encoded).expect("decode");
        assert_eq!(back.region(), RegionId(1));
        assert_eq!(back.len(), sf.len());
        assert_eq!(
            back.get(b"a", b"c", Timestamp(20)),
            sf.get(b"a", b"c", Timestamp(20))
        );
        assert_eq!(
            back.get(b"b", b"c", Timestamp(20)),
            sf.get(b"b", b"c", Timestamp(20))
        );
        assert!(StoreFileData::decode("/x", &encoded[..3]).is_err());
    }

    #[test]
    fn scan_filters_range_and_snapshot() {
        let sf = sample();
        let hits = sf.scan(b"a", Some(b"c"), Timestamp(50));
        assert_eq!(hits.len(), 2); // a (latest=20) and b (tombstone)
        assert_eq!(hits[0].2.ts, Timestamp(20));
        let hits = sf.scan(b"a", None, Timestamp(5));
        assert_eq!(hits.len(), 1); // only c@5 visible
        assert_eq!(hits[0].0, b("c"));
    }

    #[test]
    fn registry_roundtrip() {
        let reg = StoreFileRegistry::new();
        assert!(reg.is_empty());
        let sf = Rc::new(sample());
        reg.insert(Rc::clone(&sf));
        assert_eq!(reg.len(), 1);
        let got = reg.get("/store/r1/0").expect("registered");
        assert_eq!(got.len(), sf.len());
        assert!(reg.get("/other").is_none());
    }

    #[test]
    fn registry_remove_unregisters() {
        let reg = StoreFileRegistry::new();
        let sf = Rc::new(sample());
        reg.insert(Rc::clone(&sf));
        assert!(!reg.remove("/not-there"));
        assert!(reg.remove("/store/r1/0"));
        assert!(reg.get("/store/r1/0").is_none());
        assert!(reg.is_empty());
        // The held Rc still reads fine after removal.
        assert_eq!(
            sf.get(b"a", b"c", Timestamp(20)).unwrap().value,
            Some(b("a20"))
        );
    }

    #[test]
    fn from_sorted_entries_matches_memstore_build() {
        let via_ms = sample();
        let entries: Vec<_> = via_ms.entries().cloned().collect();
        let direct = StoreFileData::from_sorted_entries(RegionId(1), "/store/r1/0", entries);
        assert_eq!(direct.len(), via_ms.len());
        assert_eq!(direct.total_bytes(), via_ms.total_bytes());
        assert_eq!(
            direct.get(b"a", b"c", Timestamp(20)),
            via_ms.get(b"a", b"c", Timestamp(20))
        );
    }

    #[test]
    fn range_and_filter_metadata() {
        let sf = sample();
        assert_eq!(sf.key_range(), Some((b"a".as_ref(), b"c".as_ref())));
        assert!(sf.row_in_range(b"a"));
        assert!(sf.row_in_range(b"b"));
        assert!(!sf.row_in_range(b"0"));
        assert!(!sf.row_in_range(b"d"));
        assert!(sf.range_overlaps(b"b", Some(b"z")));
        assert!(sf.range_overlaps(b"", None));
        assert!(!sf.range_overlaps(b"d", None));
        assert!(!sf.range_overlaps(b"", Some(b"a")));
        // Inserted pairs always match; the tombstoned cell too.
        assert!(sf.filter_may_contain(b"a", b"c"));
        assert!(sf.filter_may_contain(b"b", b"c"));
        assert!(sf.filter_may_contain(b"c", b"d"));
        assert!(sf.contains_key(b"a", b"c"));
        assert!(sf.contains_key(b"b", b"c"));
        assert!(!sf.contains_key(b"a", b"d"));
        assert!(!sf.contains_key(b"zz", b"c"));
        assert!(sf.filter_bytes() > 0);
    }

    #[test]
    fn decode_preserves_filter_metadata() {
        let sf = sample();
        let back = StoreFileData::decode("/store/r1/0", &sf.encode()).expect("decode");
        assert_eq!(back.key_range(), sf.key_range());
        assert_eq!(back.filter_bytes(), sf.filter_bytes());
        for (r, c, ..) in sf.entries() {
            assert!(back.filter_may_contain(r, c), "no false negatives");
        }
        // The trailing filter section is covered by truncation checks too.
        let encoded = sf.encode();
        assert!(StoreFileData::decode("/x", &encoded[..encoded.len() - 2]).is_err());
    }

    #[test]
    fn empty_file() {
        let ms = MemStore::new();
        let sf = StoreFileData::from_memstore(RegionId(0), "/f", &ms);
        assert!(sf.is_empty());
        assert_eq!(sf.get(b"a", b"c", Timestamp::MAX), None);
        let back = StoreFileData::decode("/f", &sf.encode()).unwrap();
        assert!(back.is_empty());
    }
}
