//! Error type for store operations.

use crate::types::RegionId;
use std::error::Error;
use std::fmt;

/// Why a store request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The region is hosted here but not (yet) online — it is opening or
    /// undergoing recovery — or not hosted by the contacted server at all.
    /// Clients refresh their region map and retry.
    NotServing(RegionId),
    /// No region containing the requested row is known to the server.
    RegionUnknown,
    /// The addressed region id no longer exists on this server, but a
    /// *different* hosted region covers the request's rows — the region
    /// map changed under the client (an online split). The client must
    /// refresh its map and re-group the request by the new boundaries;
    /// retrying with the same region id can never succeed. Both
    /// region-addressed batch paths (`multi_put` flushes and `multi_get`
    /// batched reads) self-heal this way.
    WrongRegion(RegionId),
    /// Data could not be served because no live filesystem replica holds
    /// the needed store file.
    Unavailable(String),
    /// The request never got a response (dead server, dropped message);
    /// synthesized client-side by the request timeout.
    TimedOut,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotServing(r) => write!(f, "region {r} is not being served"),
            StoreError::RegionUnknown => write!(f, "no region covers the requested row"),
            StoreError::WrongRegion(r) => {
                write!(f, "region {r} was replaced by a split; refresh the map")
            }
            StoreError::Unavailable(p) => write!(f, "store file unavailable: {p}"),
            StoreError::TimedOut => write!(f, "request timed out"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            StoreError::NotServing(RegionId(3)).to_string(),
            "region r3 is not being served"
        );
        assert_eq!(StoreError::TimedOut.to_string(), "request timed out");
        assert_eq!(
            StoreError::RegionUnknown.to_string(),
            "no region covers the requested row"
        );
        assert!(StoreError::Unavailable("/f".into())
            .to_string()
            .contains("/f"));
    }
}
