//! Integration hooks the recovery middleware installs into the store.
//!
//! The paper keeps its "extensions to the key-value store … to a minimum"
//! (§1): a hook in the master that reports server failures, a hook in
//! region initialization that delays a recovered region's online
//! declaration until transactional recovery completes, and server-side
//! tracking of applied write-sets. This trait is exactly that surface;
//! `cumulo-core` provides the real implementation, and [`NoopHooks`] is
//! the behaviour of a vanilla (non-transactional) cluster.

use crate::server::RegionServer;
use crate::types::{RegionId, ServerId, Timestamp};
use bytes::Bytes;
use cumulo_sim::NodeId;
use std::fmt;
use std::rc::Rc;

/// The master-side coordination surface an online region split needs: the
/// region server proposes a split, the master allocates daughter ids and
/// persists the split intent, and the server reports completion (or
/// abandonment). The `Master` implements this; servers hold it as a trait
/// object so `server.rs` does not depend on `master.rs`. All calls are
/// made *at the master's node* — callers send themselves there through
/// the simulated network first (see [`SplitCoordinator::node`]).
pub trait SplitCoordinator {
    /// The node the coordinator runs on (the RPC destination).
    fn node(&self) -> NodeId;

    /// A server asks to split `region` (which it hosts) at `split_key`.
    /// The master validates, persists a [`crate::SplitIntent`], and — once
    /// the intent is durable — tells the server to execute.
    fn request_split(&self, server: ServerId, region: RegionId, split_key: Bytes);

    /// The server finished the local flip: daughters are online in its
    /// memory, the parent is gone. The master applies the split to the
    /// region map and retires the intent.
    fn split_completed(&self, server: ServerId, parent: RegionId);

    /// The server abandoned an intent it was granted (e.g. the reference
    /// marker writes failed); the master rolls the intent back.
    fn split_aborted(&self, server: ServerId, parent: RegionId);

    /// A server asks to merge the adjacent shrunken daughters `left` and
    /// `right` (both of which it hosts). The master validates adjacency
    /// and co-hosting, persists a [`crate::MergeIntent`], and — once the
    /// intent is durable — tells the server to execute. The default
    /// denies: merge arbitration is optional coordinator surface.
    fn request_merge(&self, server: ServerId, left: RegionId, right: RegionId) {
        let _ = (server, left, right);
    }

    /// The server finished the local merge flip: the merged region is
    /// online in its memory, both daughters are gone. The master applies
    /// the merge to the region map and retires the intent.
    fn merge_completed(&self, server: ServerId, left: RegionId) {
        let _ = (server, left);
    }

    /// The server abandoned a merge intent it was granted; the master
    /// rolls the intent back.
    fn merge_aborted(&self, server: ServerId, left: RegionId) {
        let _ = (server, left);
    }
}

/// Callbacks from the store into the recovery middleware.
pub trait RecoveryHooks {
    /// The master detected that `failed` died; its `regions` are about to
    /// be reassigned. (Paper §3.2: "We added a hook in the master server
    /// that notifies our recovery manager whenever a server fails.")
    fn on_server_failed(&self, failed: ServerId, regions: &[RegionId]);

    /// Region `region` finished HBase-internal recovery on `server` after
    /// `failed`'s crash. The region must not go online until `online` is
    /// invoked. (Paper §3.2: the region "waits for a response from our
    /// recovery manager before proceeding to actually declare the region
    /// online".)
    /// `promoted` is true when the region arrived via replica promotion
    /// rather than WAL-split placement: recovery still replays the
    /// transaction-log suffix above the persisted floor (idempotently),
    /// but there is no recovered-edits file to wait for.
    fn on_region_recovered(
        &self,
        server: Rc<RegionServer>,
        region: RegionId,
        failed: ServerId,
        promoted: bool,
        online: Box<dyn FnOnce()>,
    );

    /// A write-set portion for `region` was applied at `server` (WAL
    /// buffer + memstore), with WAL sequence `wal_seq`. `floor` carries
    /// the piggybacked `T_P(failed)` when the write is a recovery replay
    /// (Algorithm 3, lines 18–21). The persist tracker queues a PQ entry.
    fn on_write_set_applied(
        &self,
        server: ServerId,
        region: RegionId,
        ts: Timestamp,
        wal_seq: u64,
        floor: Option<Timestamp>,
    );

    /// The master applied an online split: `parent` was replaced in the
    /// region map by `bottom`/`top`. Purely informational for the
    /// middleware (per-region recovery state is keyed by region id and
    /// daughter ids are fresh); the default does nothing.
    fn on_region_split(&self, parent: RegionId, bottom: RegionId, top: RegionId) {
        let _ = (parent, bottom, top);
    }

    /// The master applied an online merge: adjacent daughters `left` and
    /// `right` were replaced in the region map by `merged`. Informational,
    /// mirroring [`RecoveryHooks::on_region_split`]; the default does
    /// nothing.
    fn on_region_merged(&self, left: RegionId, right: RegionId, merged: RegionId) {
        let _ = (left, right, merged);
    }
}

/// The master-side coordination surface region replication needs beyond
/// [`SplitCoordinator`]: lane sync-state reports. A primary must not
/// release write gates for an out-of-sync lane until the master has
/// acknowledged the report — the master is the promotion arbiter, so its
/// ack is what makes un-gating sound (the backup is now ineligible). All
/// calls are made *at the master's node*; callers send themselves there
/// through the simulated network first.
pub trait ReplicationCoordinator {
    /// The node the coordinator runs on (the RPC destination).
    fn node(&self) -> NodeId;

    /// `backup`'s lane for `region` (replica-group `epoch`) fell out of
    /// sync (gap, backlog overflow, or ack timeout). The master records
    /// the ineligibility and invokes `done(false)`; only then may the
    /// primary release gates held for that lane. When the report's epoch
    /// is older than the currently established group (the reporter is a
    /// stale ex-primary, e.g. resurfacing from a healed partition after a
    /// promotion), the master answers `done(true)` instead: the reporter
    /// must fence itself rather than un-gate.
    fn replica_unsynced(
        &self,
        region: RegionId,
        epoch: u64,
        backup: ServerId,
        done: Box<dyn FnOnce(bool)>,
    );

    /// `backup`'s lane for `region` completed a full-state sync and is
    /// eligible for promotion again.
    fn replica_synced(&self, region: RegionId, epoch: u64, backup: ServerId);
}

/// Hooks for a cluster without the recovery middleware: regions go online
/// immediately after internal recovery, nothing is tracked.
#[derive(Default)]
pub struct NoopHooks;

impl fmt::Debug for NoopHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("NoopHooks")
    }
}

impl RecoveryHooks for NoopHooks {
    fn on_server_failed(&self, _failed: ServerId, _regions: &[RegionId]) {}

    fn on_region_recovered(
        &self,
        _server: Rc<RegionServer>,
        _region: RegionId,
        _failed: ServerId,
        _promoted: bool,
        online: Box<dyn FnOnce()>,
    ) {
        online();
    }

    fn on_write_set_applied(
        &self,
        _server: ServerId,
        _region: RegionId,
        _ts: Timestamp,
        _wal_seq: u64,
        _floor: Option<Timestamp>,
    ) {
    }
}
