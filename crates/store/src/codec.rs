//! Purpose-built binary codec for on-"disk" formats (WAL records, store
//! files, recovered-edits files, threshold payloads).
//!
//! A hand-rolled codec rather than serde: reproducing a storage system
//! includes its serialization layer, and the format must be stable and
//! self-delimiting so WAL-split can decode records written by a crashed
//! server.

use crate::types::{Mutation, MutationKind, RegionId, Timestamp};
use bytes::{BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Decoding failure: the input was truncated or structurally invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    what: &'static str,
    offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {} at byte {}", self.what, self.offset)
    }
}

impl Error for DecodeError {}

/// Append-style encoder over a growable buffer.
#[derive(Default, Debug)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Appends a fixed-width `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a fixed-width big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a fixed-width big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Finishes encoding, returning the immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError {
                what,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_be_bytes(s.try_into().expect("length checked")))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_be_bytes(s.try_into().expect("length checked")))
    }

    /// Reads a length-prefixed byte string (copied out).
    pub fn get_bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len, "bytes body")?))
    }

    /// Whether the cursor consumed the entire input.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// Encodes one mutation.
pub fn encode_mutation(enc: &mut Encoder, m: &Mutation) {
    enc.put_bytes(&m.row);
    enc.put_bytes(&m.column);
    match &m.kind {
        MutationKind::Put(v) => {
            enc.put_u8(TAG_PUT);
            enc.put_bytes(v);
        }
        MutationKind::Delete => enc.put_u8(TAG_DELETE),
    }
}

/// Decodes one mutation.
pub fn decode_mutation(dec: &mut Decoder<'_>) -> Result<Mutation, DecodeError> {
    let row = dec.get_bytes()?;
    let column = dec.get_bytes()?;
    let kind = match dec.get_u8()? {
        TAG_PUT => MutationKind::Put(dec.get_bytes()?),
        TAG_DELETE => MutationKind::Delete,
        _ => {
            return Err(DecodeError {
                what: "mutation tag",
                offset: 0,
            })
        }
    };
    Ok(Mutation { row, column, kind })
}

/// One durable write-ahead-log record: a transaction's mutations for one
/// region, stamped with the commit timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The region the mutations belong to.
    pub region: RegionId,
    /// The writing transaction's commit timestamp (also the version).
    pub ts: Timestamp,
    /// The mutations for this region.
    pub mutations: Vec<Mutation>,
}

impl WalRecord {
    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        24 + self
            .mutations
            .iter()
            .map(Mutation::wire_size)
            .sum::<usize>()
    }
}

/// Encodes a batch of WAL records into one DFS record.
pub fn encode_wal_batch(records: &[WalRecord]) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u32(records.len() as u32);
    for r in records {
        enc.put_u32(r.region.0);
        enc.put_u64(r.ts.0);
        enc.put_u32(r.mutations.len() as u32);
        for m in &r.mutations {
            encode_mutation(&mut enc, m);
        }
    }
    enc.finish()
}

/// Decodes a batch previously encoded by [`encode_wal_batch`].
pub fn decode_wal_batch(buf: &[u8]) -> Result<Vec<WalRecord>, DecodeError> {
    let mut dec = Decoder::new(buf);
    let n = dec.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let region = RegionId(dec.get_u32()?);
        let ts = Timestamp(dec.get_u64()?);
        let m = dec.get_u32()? as usize;
        let mut mutations = Vec::with_capacity(m);
        for _ in 0..m {
            mutations.push(decode_mutation(&mut dec)?);
        }
        out.push(WalRecord {
            region,
            ts,
            mutations,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                region: RegionId(1),
                ts: Timestamp(42),
                mutations: vec![
                    Mutation::put("row1", "f0", "hello"),
                    Mutation::delete("row2", "f1"),
                ],
            },
            WalRecord {
                region: RegionId(2),
                ts: Timestamp(43),
                mutations: vec![],
            },
        ]
    }

    #[test]
    fn wal_batch_roundtrip() {
        let records = sample_records();
        let encoded = encode_wal_batch(&records);
        let decoded = decode_wal_batch(&encoded).expect("decode");
        assert_eq!(decoded, records);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let encoded = encode_wal_batch(&[]);
        assert_eq!(decode_wal_batch(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let encoded = encode_wal_batch(&sample_records());
        for cut in [0, 1, 5, encoded.len() / 2, encoded.len() - 1] {
            let r = decode_wal_batch(&encoded[..cut]);
            if cut < encoded.len() {
                assert!(r.is_err(), "cut at {cut} must fail");
            }
        }
    }

    #[test]
    fn bad_tag_is_an_error() {
        let mut enc = Encoder::new();
        enc.put_u32(1); // one record
        enc.put_u32(0); // region
        enc.put_u64(0); // ts
        enc.put_u32(1); // one mutation
        enc.put_bytes(b"r");
        enc.put_bytes(b"c");
        enc.put_u8(99); // invalid tag
        assert!(decode_wal_batch(&enc.finish()).is_err());
    }

    #[test]
    fn primitive_roundtrips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(123_456);
        enc.put_u64(u64::MAX - 3);
        enc.put_bytes(b"");
        enc.put_bytes(b"abc");
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 123_456);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.get_bytes().unwrap(), Bytes::new());
        assert_eq!(dec.get_bytes().unwrap(), Bytes::from_static(b"abc"));
        assert!(dec.is_at_end());
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn decode_error_displays() {
        let err = decode_wal_batch(&[1]).unwrap_err();
        assert!(err.to_string().contains("decode error"));
    }
}
