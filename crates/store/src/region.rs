//! Region descriptors and the key-range → region map.
//!
//! A table is partitioned into regions, each a contiguous, sorted key
//! range; every region is hosted by exactly one region server at a time
//! (§2.1 of the paper). Boundaries are fixed for the lifetime of a cluster
//! (online splits are out of the paper's scope); only *assignments* change,
//! when the master reassigns regions of a failed server.

use crate::types::{RegionId, ServerId};
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;

/// A region's identity and key range `[start, end)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionDescriptor {
    /// The region id.
    pub id: RegionId,
    /// Inclusive start key (empty = from the beginning of the table).
    pub start: Bytes,
    /// Exclusive end key (`None` = to the end of the table).
    pub end: Option<Bytes>,
}

impl RegionDescriptor {
    /// Whether `row` falls inside this region.
    pub fn contains(&self, row: &[u8]) -> bool {
        row >= &self.start[..]
            && match &self.end {
                Some(end) => row < &end[..],
                None => true,
            }
    }
}

/// The set of region boundaries plus the current region → server
/// assignment. Clients cache a copy and refresh it from the master when a
/// request hits a moved or offline region.
#[derive(Clone, Debug, Default)]
pub struct RegionMap {
    regions: Vec<RegionDescriptor>,
    assignments: HashMap<RegionId, ServerId>,
    /// Bumped on every assignment change so caches can detect staleness.
    epoch: u64,
}

impl fmt::Display for RegionMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RegionMap(epoch {} regions {})",
            self.epoch,
            self.regions.len()
        )?;
        Ok(())
    }
}

impl RegionMap {
    /// Builds a map from explicit split points: `splits = [k1, k2]` yields
    /// regions `[-inf,k1) [k1,k2) [k2,+inf)`.
    ///
    /// # Panics
    ///
    /// Panics if the split points are not strictly increasing.
    pub fn from_split_points(splits: &[Bytes]) -> RegionMap {
        for w in splits.windows(2) {
            assert!(w[0] < w[1], "split points must be strictly increasing");
        }
        let mut regions = Vec::with_capacity(splits.len() + 1);
        let mut start = Bytes::new();
        for (i, split) in splits.iter().enumerate() {
            regions.push(RegionDescriptor {
                id: RegionId(i as u32),
                start: start.clone(),
                end: Some(split.clone()),
            });
            start = split.clone();
        }
        regions.push(RegionDescriptor {
            id: RegionId(splits.len() as u32),
            start,
            end: None,
        });
        RegionMap {
            regions,
            assignments: HashMap::new(),
            epoch: 0,
        }
    }

    /// Builds `n` regions splitting the space of zero-padded decimal keys
    /// `prefix{number}` uniformly over `[0, key_count)` — matching the YCSB
    /// loader's `user{:012}` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split_decimal_keyspace(prefix: &str, key_count: u64, n: usize) -> RegionMap {
        assert!(n > 0, "need at least one region");
        let splits: Vec<Bytes> = (1..n)
            .map(|i| {
                let boundary = key_count * i as u64 / n as u64;
                Bytes::from(format!("{prefix}{boundary:012}"))
            })
            .collect();
        RegionMap::from_split_points(&splits)
    }

    /// All region descriptors, ordered by start key.
    pub fn regions(&self) -> &[RegionDescriptor] {
        &self.regions
    }

    /// The descriptor for `id`, if any.
    pub fn descriptor(&self, id: RegionId) -> Option<&RegionDescriptor> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// The region containing `row`.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty (an unconfigured cluster).
    pub fn region_for(&self, row: &[u8]) -> RegionId {
        assert!(!self.regions.is_empty(), "region map is empty");
        // Binary search over start keys: last region whose start <= row.
        let idx = match self.regions.binary_search_by(|r| r.start[..].cmp(row)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        debug_assert!(self.regions[idx].contains(row));
        self.regions[idx].id
    }

    /// The server currently assigned `region`, if any.
    pub fn server_for(&self, region: RegionId) -> Option<ServerId> {
        self.assignments.get(&region).copied()
    }

    /// Routes a row to its (region, server), if the region is assigned.
    pub fn locate(&self, row: &[u8]) -> (RegionId, Option<ServerId>) {
        let r = self.region_for(row);
        (r, self.server_for(r))
    }

    /// Records an assignment, bumping the epoch.
    pub fn assign(&mut self, region: RegionId, server: ServerId) {
        self.assignments.insert(region, server);
        self.epoch += 1;
    }

    /// Removes an assignment (region offline), bumping the epoch.
    pub fn unassign(&mut self, region: RegionId) {
        if self.assignments.remove(&region).is_some() {
            self.epoch += 1;
        }
    }

    /// All regions currently assigned to `server`.
    pub fn regions_of(&self, server: ServerId) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self
            .assignments
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(r, _)| *r)
            .collect();
        out.sort_unstable();
        out
    }

    /// The staleness epoch (bumped on every assignment change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current assignments, for snapshotting into client caches.
    pub fn assignments(&self) -> &HashMap<RegionId, ServerId> {
        &self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_partition_keyspace() {
        let map = RegionMap::from_split_points(&[Bytes::from_static(b"m")]);
        assert_eq!(map.regions().len(), 2);
        assert_eq!(map.region_for(b"a"), RegionId(0));
        assert_eq!(map.region_for(b"lzz"), RegionId(0));
        assert_eq!(map.region_for(b"m"), RegionId(1));
        assert_eq!(map.region_for(b"zzz"), RegionId(1));
        assert_eq!(map.region_for(b""), RegionId(0));
    }

    #[test]
    fn decimal_split_is_balanced() {
        let map = RegionMap::split_decimal_keyspace("user", 1000, 4);
        assert_eq!(map.regions().len(), 4);
        assert_eq!(map.region_for(b"user000000000000"), RegionId(0));
        assert_eq!(map.region_for(b"user000000000249"), RegionId(0));
        assert_eq!(map.region_for(b"user000000000250"), RegionId(1));
        assert_eq!(map.region_for(b"user000000000999"), RegionId(3));
    }

    #[test]
    fn every_key_maps_to_exactly_one_region() {
        let map = RegionMap::split_decimal_keyspace("user", 100, 3);
        for i in 0..100u64 {
            let key = format!("user{i:012}");
            let region = map.region_for(key.as_bytes());
            let covering: Vec<_> = map
                .regions()
                .iter()
                .filter(|r| r.contains(key.as_bytes()))
                .collect();
            assert_eq!(covering.len(), 1, "key {key} covered by {covering:?}");
            assert_eq!(covering[0].id, region);
        }
    }

    #[test]
    fn assignment_lifecycle() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        assert_eq!(map.epoch(), 0);
        map.assign(RegionId(0), ServerId(1));
        map.assign(RegionId(1), ServerId(2));
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.server_for(RegionId(0)), Some(ServerId(1)));
        assert_eq!(map.locate(b"user000000000010").1, Some(ServerId(1)));
        assert_eq!(map.regions_of(ServerId(2)), vec![RegionId(1)]);
        map.unassign(RegionId(0));
        assert_eq!(map.server_for(RegionId(0)), None);
        assert_eq!(map.epoch(), 3);
        // Unassigning twice does not bump the epoch again.
        map.unassign(RegionId(0));
        assert_eq!(map.epoch(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_panic() {
        let _ = RegionMap::from_split_points(&[Bytes::from_static(b"m"), Bytes::from_static(b"a")]);
    }

    #[test]
    fn descriptor_lookup() {
        let map = RegionMap::split_decimal_keyspace("user", 100, 2);
        assert!(map.descriptor(RegionId(0)).is_some());
        assert!(map.descriptor(RegionId(9)).is_none());
    }
}
