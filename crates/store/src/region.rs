//! Region descriptors and the key-range → region map.
//!
//! A table is partitioned into regions, each a contiguous, sorted key
//! range; every region is hosted by exactly one region server at a time
//! (§2.1 of the paper). The paper itself treats the boundaries as fixed
//! (online splits are out of its scope), but this implementation goes
//! further: the map is epoch-versioned and *mutable* — an online region
//! split ([`RegionMap::apply_split`]) atomically replaces a hot parent
//! region with two daughters, and clients that route with a stale map get
//! a `WrongRegion` error telling them to refresh and re-group (see
//! ARCHITECTURE.md, "Online region splits"). [`RegionMap::from_split_points`]
//! remains the bootstrap path. Region ids are never reused, so a cached id
//! always means the same key range.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::types::{RegionId, ServerId};
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;

/// The durable record of an in-flight online split, persisted by the
/// master (at `/split/{parent}` in the filesystem) *before* the hosting
/// server is told to execute. Failover of a server with an intent
/// outstanding consults it to either roll the split back (daughters never
/// went live in the map — always safe, because clients cannot address
/// daughter ids the map has never shown them) or, once the map flip
/// happened, recover the daughters directly. Parent and daughters are
/// never served simultaneously.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitIntent {
    /// The region being split.
    pub parent: RegionId,
    /// The daughter boundary: bottom gets `[start, split_key)`, top gets
    /// `[split_key, end)`.
    pub split_key: Bytes,
    /// The bottom daughter's id.
    pub bottom: RegionId,
    /// The top daughter's id.
    pub top: RegionId,
    /// The server executing the split.
    pub server: ServerId,
}

impl SplitIntent {
    /// Serializes the intent for its filesystem record.
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u32(self.parent.0);
        enc.put_bytes(&self.split_key);
        enc.put_u32(self.bottom.0);
        enc.put_u32(self.top.0);
        enc.put_u32(self.server.0);
        enc.finish()
    }

    /// Parses an intent record previously produced by
    /// [`SplitIntent::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or corrupt input.
    pub fn decode(buf: &[u8]) -> Result<SplitIntent, DecodeError> {
        let mut dec = Decoder::new(buf);
        Ok(SplitIntent {
            parent: RegionId(dec.get_u32()?),
            split_key: dec.get_bytes()?,
            bottom: RegionId(dec.get_u32()?),
            top: RegionId(dec.get_u32()?),
            server: ServerId(dec.get_u32()?),
        })
    }
}

/// The durable record of an in-flight online merge, persisted by the
/// master (at `/merge/{left}` in the filesystem) *before* the hosting
/// server is told to execute — the mirror image of [`SplitIntent`]. Two
/// adjacent shrunken daughters `left` and `right` collapse into a single
/// `merged` region spanning their union. Failover of a server with a
/// merge intent outstanding rolls the merge back when the map never
/// flipped (clients cannot address the merged id the map has never shown
/// them); after the flip the merged region recovers like any other.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeIntent {
    /// The lower-range region being merged (`[start, boundary)`).
    pub left: RegionId,
    /// The upper-range region being merged (`[boundary, end)`).
    pub right: RegionId,
    /// The merged region's id (`[left.start, right.end)`).
    pub merged: RegionId,
    /// The server executing the merge (it must host both daughters).
    pub server: ServerId,
}

impl MergeIntent {
    /// Serializes the intent for its filesystem record.
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u32(self.left.0);
        enc.put_u32(self.right.0);
        enc.put_u32(self.merged.0);
        enc.put_u32(self.server.0);
        enc.finish()
    }

    /// Parses an intent record previously produced by
    /// [`MergeIntent::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or corrupt input.
    pub fn decode(buf: &[u8]) -> Result<MergeIntent, DecodeError> {
        let mut dec = Decoder::new(buf);
        Ok(MergeIntent {
            left: RegionId(dec.get_u32()?),
            right: RegionId(dec.get_u32()?),
            merged: RegionId(dec.get_u32()?),
            server: ServerId(dec.get_u32()?),
        })
    }
}

/// A region's identity and key range `[start, end)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionDescriptor {
    /// The region id.
    pub id: RegionId,
    /// Inclusive start key (empty = from the beginning of the table).
    pub start: Bytes,
    /// Exclusive end key (`None` = to the end of the table).
    pub end: Option<Bytes>,
}

impl RegionDescriptor {
    /// Whether `row` falls inside this region.
    pub fn contains(&self, row: &[u8]) -> bool {
        row >= &self.start[..]
            && match &self.end {
                Some(end) => row < &end[..],
                None => true,
            }
    }
}

/// The set of region boundaries plus the current region → server
/// assignment. Clients cache a copy and refresh it from the master when a
/// request hits a moved or offline region.
#[derive(Clone, Debug, Default)]
pub struct RegionMap {
    regions: Vec<RegionDescriptor>,
    assignments: HashMap<RegionId, ServerId>,
    /// Per-server assigned-region counts, maintained incrementally so the
    /// master's load-aware placement reads a server's load in O(1) instead
    /// of scanning every assignment (O(regions) per server per placement —
    /// the scaling cliff the million-key soak exposed).
    assigned_counts: HashMap<ServerId, usize>,
    /// Backup servers per region (the primary is in `assignments`). Only
    /// populated when region replication is enabled; replica changes bump
    /// the epoch like assignment changes, because the epoch doubles as the
    /// fencing token of the primary→backup ship stream.
    replicas: HashMap<RegionId, Vec<ServerId>>,
    /// Bumped on every assignment change so caches can detect staleness.
    epoch: u64,
}

impl fmt::Display for RegionMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RegionMap(epoch {} regions {})",
            self.epoch,
            self.regions.len()
        )?;
        Ok(())
    }
}

impl RegionMap {
    /// Builds a map from explicit split points: `splits = [k1, k2]` yields
    /// regions `[-inf,k1) [k1,k2) [k2,+inf)`.
    ///
    /// # Panics
    ///
    /// Panics if the split points are not strictly increasing.
    pub fn from_split_points(splits: &[Bytes]) -> RegionMap {
        for w in splits.windows(2) {
            assert!(w[0] < w[1], "split points must be strictly increasing");
        }
        let mut regions = Vec::with_capacity(splits.len() + 1);
        let mut start = Bytes::new();
        for (i, split) in splits.iter().enumerate() {
            regions.push(RegionDescriptor {
                id: RegionId(i as u32),
                start: start.clone(),
                end: Some(split.clone()),
            });
            start = split.clone();
        }
        regions.push(RegionDescriptor {
            id: RegionId(splits.len() as u32),
            start,
            end: None,
        });
        RegionMap {
            regions,
            assignments: HashMap::new(),
            assigned_counts: HashMap::new(),
            replicas: HashMap::new(),
            epoch: 0,
        }
    }

    /// Builds `n` regions splitting the space of zero-padded decimal keys
    /// `prefix{number}` uniformly over `[0, key_count)` — matching the YCSB
    /// loader's `user{:012}` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split_decimal_keyspace(prefix: &str, key_count: u64, n: usize) -> RegionMap {
        assert!(n > 0, "need at least one region");
        let splits: Vec<Bytes> = (1..n)
            .map(|i| {
                let boundary = key_count * i as u64 / n as u64;
                Bytes::from(format!("{prefix}{boundary:012}"))
            })
            .collect();
        RegionMap::from_split_points(&splits)
    }

    /// All region descriptors, ordered by start key.
    pub fn regions(&self) -> &[RegionDescriptor] {
        &self.regions
    }

    /// The descriptor for `id`, if any.
    pub fn descriptor(&self, id: RegionId) -> Option<&RegionDescriptor> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// The region containing `row`.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty (an unconfigured cluster).
    pub fn region_for(&self, row: &[u8]) -> RegionId {
        assert!(!self.regions.is_empty(), "region map is empty");
        // Binary search over start keys: last region whose start <= row.
        let idx = match self.regions.binary_search_by(|r| r.start[..].cmp(row)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        debug_assert!(self.regions[idx].contains(row));
        self.regions[idx].id
    }

    /// The server currently assigned `region`, if any.
    pub fn server_for(&self, region: RegionId) -> Option<ServerId> {
        self.assignments.get(&region).copied()
    }

    /// Routes a row to its (region, server), if the region is assigned.
    pub fn locate(&self, row: &[u8]) -> (RegionId, Option<ServerId>) {
        let r = self.region_for(row);
        (r, self.server_for(r))
    }

    fn count_inc(&mut self, server: ServerId) {
        *self.assigned_counts.entry(server).or_insert(0) += 1;
    }

    fn count_dec(&mut self, server: ServerId) {
        if let Some(n) = self.assigned_counts.get_mut(&server) {
            *n -= 1;
            if *n == 0 {
                self.assigned_counts.remove(&server);
            }
        }
    }

    /// Records an assignment, bumping the epoch.
    pub fn assign(&mut self, region: RegionId, server: ServerId) {
        if let Some(prev) = self.assignments.insert(region, server) {
            self.count_dec(prev);
        }
        self.count_inc(server);
        self.epoch += 1;
    }

    /// Removes an assignment (region offline), bumping the epoch.
    pub fn unassign(&mut self, region: RegionId) {
        if let Some(prev) = self.assignments.remove(&region) {
            self.count_dec(prev);
            self.epoch += 1;
        }
    }

    /// How many regions are currently assigned to `server` — O(1), fed by
    /// the incrementally-maintained per-server counts.
    pub fn assigned_count(&self, server: ServerId) -> usize {
        self.assigned_counts.get(&server).copied().unwrap_or(0)
    }

    /// All regions currently assigned to `server`.
    pub fn regions_of(&self, server: ServerId) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self
            .assignments
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(r, _)| *r)
            .collect();
        out.sort_unstable();
        out
    }

    /// Records `region`'s backup set, bumping the epoch (the new epoch is
    /// the fencing token handed to the primary's ship stream).
    pub fn set_replicas(&mut self, region: RegionId, backups: Vec<ServerId>) {
        self.replicas.insert(region, backups);
        self.epoch += 1;
    }

    /// Drops `region`'s backup set (if any), bumping the epoch on change.
    pub fn clear_replicas(&mut self, region: RegionId) {
        if self.replicas.remove(&region).is_some() {
            self.epoch += 1;
        }
    }

    /// The backup servers of `region` (empty when unreplicated).
    pub fn replicas_of(&self, region: RegionId) -> &[ServerId] {
        self.replicas.get(&region).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All regions that keep a backup on `server`, sorted.
    pub fn replica_hosts(&self, server: ServerId) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self
            .replicas
            .iter()
            .filter(|(_, backups)| backups.contains(&server))
            .map(|(r, _)| *r)
            .collect();
        out.sort_unstable();
        out
    }

    /// Applies an online split: the `parent` descriptor is atomically
    /// replaced by two daughters partitioning its range at `split_key`
    /// (`bottom` = `[start, split_key)`, `top` = `[split_key, end)`), the
    /// parent's assignment (if any) carries over to both daughters, and
    /// the epoch bumps so caches detect the change. Returns `false` (and
    /// changes nothing) when `parent` is not in the map or `split_key`
    /// does not fall strictly inside its range.
    pub fn apply_split(
        &mut self,
        parent: RegionId,
        split_key: &Bytes,
        bottom: RegionId,
        top: RegionId,
    ) -> bool {
        let Some(idx) = self.regions.iter().position(|r| r.id == parent) else {
            return false;
        };
        let desc = self.regions[idx].clone();
        let inside = split_key[..] > desc.start[..]
            && desc.end.as_ref().map(|e| split_key < e).unwrap_or(true);
        if !inside {
            return false;
        }
        self.regions[idx] = RegionDescriptor {
            id: bottom,
            start: desc.start,
            end: Some(split_key.clone()),
        };
        self.regions.insert(
            idx + 1,
            RegionDescriptor {
                id: top,
                start: split_key.clone(),
                end: desc.end,
            },
        );
        if let Some(server) = self.assignments.remove(&parent) {
            self.assignments.insert(bottom, server);
            self.assignments.insert(top, server);
            self.count_inc(server);
        }
        // The parent's backup set carries to both daughters: the master
        // re-ships daughter state to the same hosts, preserving locality.
        if let Some(backups) = self.replicas.remove(&parent) {
            self.replicas.insert(bottom, backups.clone());
            self.replicas.insert(top, backups);
        }
        self.epoch += 1;
        true
    }

    /// Applies an online merge: the adjacent `left` and `right`
    /// descriptors are atomically replaced by a single `merged` region
    /// spanning their union, the common assignment (if any) carries over,
    /// and the epoch bumps so caches detect the change. Returns `false`
    /// (and changes nothing) when either region is missing, they are not
    /// adjacent in key order (`left` immediately below `right`), or they
    /// are assigned to different servers.
    pub fn apply_merge(&mut self, left: RegionId, right: RegionId, merged: RegionId) -> bool {
        let Some(idx) = self.regions.iter().position(|r| r.id == left) else {
            return false;
        };
        if idx + 1 >= self.regions.len() || self.regions[idx + 1].id != right {
            return false;
        }
        if self.assignments.get(&left) != self.assignments.get(&right) {
            return false;
        }
        let l = self.regions[idx].clone();
        let r = self.regions[idx + 1].clone();
        debug_assert_eq!(
            l.end.as_deref(),
            Some(&r.start[..]),
            "map regions contiguous"
        );
        self.regions[idx] = RegionDescriptor {
            id: merged,
            start: l.start,
            end: r.end,
        };
        self.regions.remove(idx + 1);
        if let Some(server) = self.assignments.remove(&right) {
            self.count_dec(server);
        }
        if let Some(server) = self.assignments.remove(&left) {
            self.assignments.insert(merged, server);
        }
        // The daughters' backup sets retire with them; the master
        // re-establishes a group for the merged region from scratch.
        self.replicas.remove(&left);
        self.replicas.remove(&right);
        self.epoch += 1;
        true
    }

    /// The largest region id in the map (`None` when empty) — the master
    /// allocates daughter ids above it, never reusing an id.
    pub fn max_region_id(&self) -> Option<RegionId> {
        self.regions.iter().map(|r| r.id).max()
    }

    /// The staleness epoch (bumped on every assignment change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current assignments, for snapshotting into client caches.
    pub fn assignments(&self) -> &HashMap<RegionId, ServerId> {
        &self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_partition_keyspace() {
        let map = RegionMap::from_split_points(&[Bytes::from_static(b"m")]);
        assert_eq!(map.regions().len(), 2);
        assert_eq!(map.region_for(b"a"), RegionId(0));
        assert_eq!(map.region_for(b"lzz"), RegionId(0));
        assert_eq!(map.region_for(b"m"), RegionId(1));
        assert_eq!(map.region_for(b"zzz"), RegionId(1));
        assert_eq!(map.region_for(b""), RegionId(0));
    }

    #[test]
    fn decimal_split_is_balanced() {
        let map = RegionMap::split_decimal_keyspace("user", 1000, 4);
        assert_eq!(map.regions().len(), 4);
        assert_eq!(map.region_for(b"user000000000000"), RegionId(0));
        assert_eq!(map.region_for(b"user000000000249"), RegionId(0));
        assert_eq!(map.region_for(b"user000000000250"), RegionId(1));
        assert_eq!(map.region_for(b"user000000000999"), RegionId(3));
    }

    #[test]
    fn every_key_maps_to_exactly_one_region() {
        let map = RegionMap::split_decimal_keyspace("user", 100, 3);
        for i in 0..100u64 {
            let key = format!("user{i:012}");
            let region = map.region_for(key.as_bytes());
            let covering: Vec<_> = map
                .regions()
                .iter()
                .filter(|r| r.contains(key.as_bytes()))
                .collect();
            assert_eq!(covering.len(), 1, "key {key} covered by {covering:?}");
            assert_eq!(covering[0].id, region);
        }
    }

    #[test]
    fn assignment_lifecycle() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        assert_eq!(map.epoch(), 0);
        map.assign(RegionId(0), ServerId(1));
        map.assign(RegionId(1), ServerId(2));
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.server_for(RegionId(0)), Some(ServerId(1)));
        assert_eq!(map.locate(b"user000000000010").1, Some(ServerId(1)));
        assert_eq!(map.regions_of(ServerId(2)), vec![RegionId(1)]);
        map.unassign(RegionId(0));
        assert_eq!(map.server_for(RegionId(0)), None);
        assert_eq!(map.epoch(), 3);
        // Unassigning twice does not bump the epoch again.
        map.unassign(RegionId(0));
        assert_eq!(map.epoch(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_panic() {
        let _ = RegionMap::from_split_points(&[Bytes::from_static(b"m"), Bytes::from_static(b"a")]);
    }

    #[test]
    fn apply_split_replaces_parent_and_partitions_range() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        map.assign(RegionId(0), ServerId(7));
        let epoch = map.epoch();
        let key = Bytes::from_static(b"user000000000020");
        assert!(map.apply_split(RegionId(0), &key, RegionId(2), RegionId(3)));
        assert!(map.epoch() > epoch);
        assert!(map.descriptor(RegionId(0)).is_none(), "parent retired");
        assert_eq!(map.region_for(b"user000000000019"), RegionId(2));
        assert_eq!(map.region_for(b"user000000000020"), RegionId(3));
        assert_eq!(map.region_for(b"user000000000049"), RegionId(3));
        assert_eq!(map.region_for(b"user000000000050"), RegionId(1));
        // The parent's assignment carried over to both daughters.
        assert_eq!(map.server_for(RegionId(2)), Some(ServerId(7)));
        assert_eq!(map.server_for(RegionId(3)), Some(ServerId(7)));
        assert_eq!(map.server_for(RegionId(0)), None);
        // The map still partitions the key space.
        for i in 0..100u64 {
            let key = format!("user{i:012}");
            let covering = map
                .regions()
                .iter()
                .filter(|r| r.contains(key.as_bytes()))
                .count();
            assert_eq!(covering, 1, "key {key}");
        }
        assert_eq!(map.max_region_id(), Some(RegionId(3)));
    }

    #[test]
    fn apply_split_rejects_bad_keys_and_unknown_parents() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        let epoch = map.epoch();
        // Key at the region start: bottom daughter would be empty.
        let start = Bytes::from_static(b"");
        assert!(!map.apply_split(RegionId(0), &start, RegionId(2), RegionId(3)));
        // Key outside the region.
        let outside = Bytes::from_static(b"user000000000090");
        assert!(!map.apply_split(RegionId(0), &outside, RegionId(2), RegionId(3)));
        // Unknown parent.
        let key = Bytes::from_static(b"user000000000020");
        assert!(!map.apply_split(RegionId(9), &key, RegionId(2), RegionId(3)));
        assert_eq!(map.epoch(), epoch, "failed splits must not bump the epoch");
        assert_eq!(map.regions().len(), 2);
    }

    #[test]
    fn apply_merge_collapses_adjacent_daughters() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        map.assign(RegionId(0), ServerId(7));
        map.assign(RegionId(1), ServerId(7));
        // Split then merge back: the keyspace partition round-trips.
        let key = Bytes::from_static(b"user000000000020");
        assert!(map.apply_split(RegionId(0), &key, RegionId(2), RegionId(3)));
        let epoch = map.epoch();
        assert!(map.apply_merge(RegionId(2), RegionId(3), RegionId(4)));
        assert!(map.epoch() > epoch);
        assert!(map.descriptor(RegionId(2)).is_none(), "left retired");
        assert!(map.descriptor(RegionId(3)).is_none(), "right retired");
        assert_eq!(map.region_for(b"user000000000019"), RegionId(4));
        assert_eq!(map.region_for(b"user000000000020"), RegionId(4));
        assert_eq!(map.region_for(b"user000000000050"), RegionId(1));
        assert_eq!(map.server_for(RegionId(4)), Some(ServerId(7)));
        for i in 0..100u64 {
            let key = format!("user{i:012}");
            let covering = map
                .regions()
                .iter()
                .filter(|r| r.contains(key.as_bytes()))
                .count();
            assert_eq!(covering, 1, "key {key}");
        }
        assert_eq!(map.max_region_id(), Some(RegionId(4)));
    }

    #[test]
    fn apply_merge_rejects_non_adjacent_and_split_hosting() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 4);
        map.assign(RegionId(0), ServerId(1));
        map.assign(RegionId(1), ServerId(1));
        map.assign(RegionId(2), ServerId(2));
        map.assign(RegionId(3), ServerId(2));
        let epoch = map.epoch();
        // Wrong order: right must be immediately above left.
        assert!(!map.apply_merge(RegionId(1), RegionId(0), RegionId(9)));
        // Not adjacent.
        assert!(!map.apply_merge(RegionId(0), RegionId(2), RegionId(9)));
        // Adjacent but hosted by different servers.
        assert!(!map.apply_merge(RegionId(1), RegionId(2), RegionId(9)));
        // Unknown region.
        assert!(!map.apply_merge(RegionId(8), RegionId(1), RegionId(9)));
        assert_eq!(map.epoch(), epoch, "failed merges must not bump the epoch");
        assert_eq!(map.regions().len(), 4);
        // A valid merge of the co-hosted adjacent pair still works.
        assert!(map.apply_merge(RegionId(2), RegionId(3), RegionId(9)));
        assert_eq!(map.regions().len(), 3);
    }

    #[test]
    fn assigned_counts_track_mutations() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 3);
        assert_eq!(map.assigned_count(ServerId(1)), 0);
        map.assign(RegionId(0), ServerId(1));
        map.assign(RegionId(1), ServerId(1));
        map.assign(RegionId(2), ServerId(2));
        assert_eq!(map.assigned_count(ServerId(1)), 2);
        assert_eq!(map.assigned_count(ServerId(2)), 1);
        // Reassignment moves the count between servers.
        map.assign(RegionId(1), ServerId(2));
        assert_eq!(map.assigned_count(ServerId(1)), 1);
        assert_eq!(map.assigned_count(ServerId(2)), 2);
        map.unassign(RegionId(0));
        assert_eq!(map.assigned_count(ServerId(1)), 0);
        // Splits add one hosted region; merges remove one.
        let key = Bytes::from_static(b"user000000000050");
        assert!(map.apply_split(RegionId(1), &key, RegionId(3), RegionId(4)));
        assert_eq!(map.assigned_count(ServerId(2)), 3);
        assert!(map.apply_merge(RegionId(3), RegionId(4), RegionId(5)));
        assert_eq!(map.assigned_count(ServerId(2)), 2);
        // Counts always agree with the exhaustive scan.
        for s in [ServerId(1), ServerId(2)] {
            assert_eq!(map.assigned_count(s), map.regions_of(s).len());
        }
    }

    #[test]
    fn merge_intent_roundtrip() {
        let intent = MergeIntent {
            left: RegionId(10),
            right: RegionId(11),
            merged: RegionId(12),
            server: ServerId(2),
        };
        let back = MergeIntent::decode(&intent.encode()).expect("decode");
        assert_eq!(back, intent);
        assert!(MergeIntent::decode(&intent.encode()[..3]).is_err());
    }

    #[test]
    fn split_intent_roundtrip() {
        let intent = SplitIntent {
            parent: RegionId(4),
            split_key: Bytes::from_static(b"user000000000033"),
            bottom: RegionId(10),
            top: RegionId(11),
            server: ServerId(1),
        };
        let back = SplitIntent::decode(&intent.encode()).expect("decode");
        assert_eq!(back, intent);
        assert!(SplitIntent::decode(&intent.encode()[..3]).is_err());
    }

    #[test]
    fn replica_bookkeeping_bumps_epoch_and_follows_splits() {
        let mut map = RegionMap::split_decimal_keyspace("user", 100, 2);
        map.assign(RegionId(0), ServerId(1));
        let epoch = map.epoch();
        map.set_replicas(RegionId(0), vec![ServerId(2), ServerId(3)]);
        assert!(map.epoch() > epoch, "replica changes must fence");
        assert_eq!(map.replicas_of(RegionId(0)), &[ServerId(2), ServerId(3)]);
        assert_eq!(map.replicas_of(RegionId(1)), &[] as &[ServerId]);
        assert_eq!(map.replica_hosts(ServerId(2)), vec![RegionId(0)]);
        assert_eq!(map.replica_hosts(ServerId(1)), Vec::<RegionId>::new());
        // Splitting the parent carries its backup set to both daughters.
        let key = Bytes::from_static(b"user000000000020");
        assert!(map.apply_split(RegionId(0), &key, RegionId(2), RegionId(3)));
        assert_eq!(map.replicas_of(RegionId(2)), &[ServerId(2), ServerId(3)]);
        assert_eq!(map.replicas_of(RegionId(3)), &[ServerId(2), ServerId(3)]);
        assert_eq!(
            map.replica_hosts(ServerId(3)),
            vec![RegionId(2), RegionId(3)]
        );
        // Clearing is idempotent on the epoch.
        map.clear_replicas(RegionId(2));
        let epoch = map.epoch();
        map.clear_replicas(RegionId(2));
        assert_eq!(map.epoch(), epoch);
        assert_eq!(map.replicas_of(RegionId(2)), &[] as &[ServerId]);
    }

    #[test]
    fn descriptor_lookup() {
        let map = RegionMap::split_decimal_keyspace("user", 100, 2);
        assert!(map.descriptor(RegionId(0)).is_some());
        assert!(map.descriptor(RegionId(9)).is_none());
    }
}
