//! Stress and property tests of the coordination substrate: many
//! sessions, interleaved expiries, watch storms.

use bytes::Bytes;
use cumulo_coord::{CoordClient, CoordService, SessionId, WatchEvent};
use cumulo_sim::{every, LatencyConfig, Network, Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn setup(seed: u64) -> (Sim, Rc<Network>, Rc<CoordService>) {
    let sim = Sim::new(seed);
    let net = Network::new(&sim, LatencyConfig::lan_100mbps());
    let node = net.add_node("coord");
    let svc = CoordService::new(&sim, &net, node, SimDuration::from_millis(100));
    (sim, net, svc)
}

#[test]
fn fifty_sessions_with_mixed_lifecycles() {
    let (sim, net, svc) = setup(7);
    let mut clients = Vec::new();
    for i in 0..50 {
        let node = net.add_node(&format!("c{i}"));
        let client = CoordClient::new(&sim, &net, &svc, node);
        let sid: Rc<Cell<Option<SessionId>>> = Rc::new(Cell::new(None));
        let s2 = sid.clone();
        client.create_session(SimDuration::from_secs(2), move |s| s2.set(Some(s)));
        clients.push((client, sid, node));
    }
    sim.run_for(SimDuration::from_millis(200));
    // Everyone registers a liveness znode and starts heartbeating.
    let mut timers = Vec::new();
    for (i, (client, sid, _)) in clients.iter().enumerate() {
        let s = sid.get().expect("session");
        client.create(&format!("/live/{i}"), Bytes::new(), Some(s));
        let c2 = client.clone();
        timers.push(every(&sim, SimDuration::from_millis(500), move || {
            c2.touch(s)
        }));
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(svc.children("/live/").len(), 50);

    // Crash a third; their sessions must expire, others must survive.
    for (_, _, node) in clients.iter().take(17) {
        net.crash(*node);
    }
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(svc.children("/live/").len(), 33);
    assert_eq!(svc.expired_session_count(), 17);

    // The rest shut down cleanly.
    for (client, sid, _) in clients.iter().skip(17) {
        client.close_session(sid.get().unwrap());
    }
    for t in &timers {
        t.cancel();
    }
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(svc.children("/live/").len(), 0);
}

#[test]
fn watch_storm_delivers_every_event_in_order() {
    let (sim, net, svc) = setup(8);
    let watcher = net.add_node("watcher");
    let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    svc.watch_prefix("/data/", watcher, move |e| {
        if let WatchEvent::DataChanged(p) | WatchEvent::Created(p) = e {
            ev.borrow_mut().push(p);
        }
    });
    let writer_node = net.add_node("writer");
    let writer = CoordClient::new(&sim, &net, &svc, writer_node);
    for i in 0..500 {
        writer.set_data(&format!("/data/key{}", i % 10), Bytes::from(vec![i as u8]));
    }
    sim.run_for(SimDuration::from_secs(5));
    let events = events.borrow();
    assert_eq!(events.len(), 500, "every event delivered exactly once");
    // FIFO end-to-end: per-key order must match write order.
    for k in 0..10 {
        let key = format!("/data/key{k}");
        let count = events.iter().filter(|p| **p == key).count();
        assert_eq!(count, 50);
    }
}

proptest! {
    /// Sessions expire if and only if their touch stream pauses longer
    /// than the timeout.
    #[test]
    fn expiry_iff_touches_stop(
        touch_period_ms in 50u64..2_000,
        timeout_ms in 300u64..3_000,
    ) {
        let (sim, _net, svc) = setup(9);
        let owner = cumulo_sim::NodeId(0);
        let sid = svc.create_session(owner, SimDuration::from_millis(timeout_ms));
        // Touch for 10 periods.
        for i in 1..=10u64 {
            let svc2 = Rc::clone(&svc);
            sim.schedule_at(SimTime::from_nanos(i * touch_period_ms * 1_000_000), move || {
                svc2.touch(sid);
            });
        }
        let active_window = 10 * touch_period_ms;
        sim.run_until(SimTime::from_nanos(active_window * 1_000_000));
        let survived_active = svc.session_alive(sid);
        if touch_period_ms + 150 < timeout_ms {
            // Sweep granularity is 100 ms; allow slack.
            prop_assert!(survived_active, "session died while being touched");
        }
        // Stop touching: must expire within timeout + sweep slack.
        sim.run_for(SimDuration::from_millis(timeout_ms + 300));
        prop_assert!(!svc.session_alive(sid), "session must expire after touches stop");
    }

    /// Znode CRUD through the RPC client matches a model map.
    #[test]
    fn znode_crud_matches_model(
        ops in prop::collection::vec((0u8..4, 0u8..8, any::<u8>()), 1..60),
    ) {
        let (sim, net, svc) = setup(10);
        let node = net.add_node("c");
        let client = CoordClient::new(&sim, &net, &svc, node);
        let mut model: std::collections::BTreeMap<String, u8> = Default::default();
        for (op, key, val) in ops {
            let path = format!("/m/{key}");
            match op {
                0 | 1 => {
                    client.set_data(&path, Bytes::from(vec![val]));
                    model.insert(path, val);
                }
                2 => {
                    client.delete(&path);
                    model.remove(&path);
                }
                _ => {}
            }
            // Let the FIFO pipeline drain before comparing.
            sim.run_for(SimDuration::from_millis(10));
        }
        sim.run_for(SimDuration::from_millis(100));
        let listed = svc.children("/m/");
        let expect: Vec<String> = model.keys().cloned().collect();
        prop_assert_eq!(listed, expect);
        for (path, val) in &model {
            prop_assert_eq!(svc.get_data(path), Some(Bytes::from(vec![*val])));
        }
    }
}
