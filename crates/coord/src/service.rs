//! The coordination service state machine: znodes, sessions, watches.

use bytes::Bytes;
use cumulo_sim::{every, Network, NodeId, Sim, SimDuration, SimTime, TimerHandle};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::rc::{Rc, Weak};

/// Identifier of a coordination session (one per registered component).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

/// Identifier of a registered watch, used to remove it.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct WatchId(pub u64);

/// A change notification delivered to a prefix watcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchEvent {
    /// A znode was created at `path`.
    Created(String),
    /// The data of the znode at `path` changed.
    DataChanged(String),
    /// The znode at `path` was deleted (explicitly or by session expiry).
    Deleted(String),
}

impl WatchEvent {
    /// The path this event concerns.
    pub fn path(&self) -> &str {
        match self {
            WatchEvent::Created(p) | WatchEvent::DataChanged(p) | WatchEvent::Deleted(p) => p,
        }
    }
}

struct Znode {
    data: Bytes,
    ephemeral_owner: Option<SessionId>,
    version: u64,
}

struct Session {
    _owner: NodeId,
    timeout: SimDuration,
    last_touch: SimTime,
}

struct Watch {
    prefix: String,
    watcher: NodeId,
    cb: Rc<dyn Fn(WatchEvent)>,
}

/// The coordination service. Lives on one node; shared via `Rc`.
///
/// All methods represent the *server-side* handling of a request; use
/// [`crate::CoordClient`] from components so requests and responses pay
/// network latency and obey crash/partition semantics.
pub struct CoordService {
    sim: Sim,
    net: Rc<Network>,
    /// The node this service runs on.
    node: NodeId,
    znodes: RefCell<BTreeMap<String, Znode>>,
    sessions: RefCell<HashMap<SessionId, Session>>,
    watches: RefCell<Vec<(WatchId, Watch)>>,
    next_session: Cell<u64>,
    next_watch: Cell<u64>,
    expired_sessions: Cell<u64>,
    sweep_timer: RefCell<Option<TimerHandle>>,
}

impl fmt::Debug for CoordService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoordService")
            .field("node", &self.node)
            .field("znodes", &self.znodes.borrow().len())
            .field("sessions", &self.sessions.borrow().len())
            .field("watches", &self.watches.borrow().len())
            .finish()
    }
}

impl CoordService {
    /// Creates the service on `node` and starts its session-expiry sweep
    /// (every `sweep_interval`).
    pub fn new(
        sim: &Sim,
        net: &Rc<Network>,
        node: NodeId,
        sweep_interval: SimDuration,
    ) -> Rc<CoordService> {
        let svc = Rc::new(CoordService {
            sim: sim.clone(),
            net: Rc::clone(net),
            node,
            znodes: RefCell::new(BTreeMap::new()),
            sessions: RefCell::new(HashMap::new()),
            watches: RefCell::new(Vec::new()),
            next_session: Cell::new(1),
            next_watch: Cell::new(1),
            expired_sessions: Cell::new(0),
            sweep_timer: RefCell::new(None),
        });
        let weak: Weak<CoordService> = Rc::downgrade(&svc);
        let timer = every(sim, sweep_interval, move || {
            if let Some(svc) = weak.upgrade() {
                svc.expire_dead_sessions();
            }
        });
        *svc.sweep_timer.borrow_mut() = Some(timer);
        svc
    }

    /// The node the service runs on (RPC destination).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Opens a session owned by `owner` that expires `timeout` after its
    /// most recent touch.
    pub fn create_session(&self, owner: NodeId, timeout: SimDuration) -> SessionId {
        let id = SessionId(self.next_session.get());
        self.next_session.set(id.0 + 1);
        self.sessions.borrow_mut().insert(
            id,
            Session {
                _owner: owner,
                timeout,
                last_touch: self.sim.now(),
            },
        );
        id
    }

    /// Refreshes a session's liveness. Unknown (already expired) sessions
    /// are ignored — the owner will discover the expiry via its znodes.
    pub fn touch(&self, session: SessionId) {
        if let Some(s) = self.sessions.borrow_mut().get_mut(&session) {
            s.last_touch = self.sim.now();
        }
    }

    /// Whether `session` is still open.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.sessions.borrow().contains_key(&session)
    }

    /// Closes a session cleanly, deleting its ephemeral znodes (watchers
    /// are notified, as with an expiry).
    pub fn close_session(&self, session: SessionId) {
        if self.sessions.borrow_mut().remove(&session).is_some() {
            self.delete_ephemerals_of(session);
        }
    }

    /// Creates or replaces the znode at `path`.
    ///
    /// With `ephemeral_owner`, the znode is deleted automatically when that
    /// session closes or expires.
    pub fn create(&self, path: &str, data: Bytes, ephemeral_owner: Option<SessionId>) {
        let existed = {
            let mut z = self.znodes.borrow_mut();
            let existed = z.contains_key(path);
            let version = z.get(path).map(|n| n.version + 1).unwrap_or(0);
            z.insert(
                path.to_owned(),
                Znode {
                    data,
                    ephemeral_owner,
                    version,
                },
            );
            existed
        };
        let ev = if existed {
            WatchEvent::DataChanged(path.to_owned())
        } else {
            WatchEvent::Created(path.to_owned())
        };
        self.fire(ev);
    }

    /// Updates the data at `path`, creating a persistent znode if absent.
    pub fn set_data(&self, path: &str, data: Bytes) {
        let existed = {
            let mut z = self.znodes.borrow_mut();
            match z.get_mut(path) {
                Some(n) => {
                    n.data = data;
                    n.version += 1;
                    true
                }
                None => {
                    z.insert(
                        path.to_owned(),
                        Znode {
                            data,
                            ephemeral_owner: None,
                            version: 0,
                        },
                    );
                    false
                }
            }
        };
        let ev = if existed {
            WatchEvent::DataChanged(path.to_owned())
        } else {
            WatchEvent::Created(path.to_owned())
        };
        self.fire(ev);
    }

    /// Reads the data at `path`.
    pub fn get_data(&self, path: &str) -> Option<Bytes> {
        self.znodes.borrow().get(path).map(|n| n.data.clone())
    }

    /// Whether a znode exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.znodes.borrow().contains_key(path)
    }

    /// Deletes the znode at `path` if present.
    pub fn delete(&self, path: &str) {
        let removed = self.znodes.borrow_mut().remove(path).is_some();
        if removed {
            self.fire(WatchEvent::Deleted(path.to_owned()));
        }
    }

    /// All paths with the given prefix, in lexicographic order.
    pub fn children(&self, prefix: &str) -> Vec<String> {
        self.znodes
            .borrow()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Registers a persistent prefix watch. `cb` runs *at the watcher's
    /// node* (after network delivery) for every event under `prefix`; it is
    /// never invoked if the watcher node is dead at delivery time.
    pub fn watch_prefix(
        &self,
        prefix: &str,
        watcher: NodeId,
        cb: impl Fn(WatchEvent) + 'static,
    ) -> WatchId {
        let id = WatchId(self.next_watch.get());
        self.next_watch.set(id.0 + 1);
        self.watches.borrow_mut().push((
            id,
            Watch {
                prefix: prefix.to_owned(),
                watcher,
                cb: Rc::new(cb),
            },
        ));
        id
    }

    /// Removes a watch registered with [`CoordService::watch_prefix`].
    pub fn unwatch(&self, id: WatchId) {
        self.watches.borrow_mut().retain(|(wid, _)| *wid != id);
    }

    /// Number of sessions expired by the sweep since startup.
    pub fn expired_session_count(&self) -> u64 {
        self.expired_sessions.get()
    }

    fn fire(&self, ev: WatchEvent) {
        let targets: Vec<(NodeId, Rc<dyn Fn(WatchEvent)>)> = self
            .watches
            .borrow()
            .iter()
            .filter(|(_, w)| ev.path().starts_with(&w.prefix))
            .map(|(_, w)| (w.watcher, Rc::clone(&w.cb)))
            .collect();
        for (watcher, cb) in targets {
            let ev = ev.clone();
            self.net
                .send(self.node, watcher, 64 + ev.path().len(), move || cb(ev));
        }
    }

    fn delete_ephemerals_of(&self, session: SessionId) {
        let doomed: Vec<String> = self
            .znodes
            .borrow()
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(session))
            .map(|(k, _)| k.clone())
            .collect();
        for path in doomed {
            self.delete(&path);
        }
    }

    fn expire_dead_sessions(&self) {
        let now = self.sim.now();
        let mut dead: Vec<SessionId> = self
            .sessions
            .borrow()
            .iter()
            .filter(|(_, s)| now.saturating_since(s.last_touch) > s.timeout)
            .map(|(id, _)| *id)
            .collect();
        // `sessions` is a HashMap, so the collect above is in hash order,
        // which varies per process. Expiry deletes ephemerals, and those
        // deletes fire watches — an observable order. Sort so runs with
        // the same seed deliver watch events identically.
        dead.sort_unstable();
        for id in dead {
            self.sessions.borrow_mut().remove(&id);
            self.expired_sessions.set(self.expired_sessions.get() + 1);
            self.delete_ephemerals_of(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulo_sim::LatencyConfig;

    fn setup() -> (Sim, Rc<Network>, Rc<CoordService>, NodeId) {
        let sim = Sim::new(7);
        let net = Network::new(&sim, LatencyConfig::lan_100mbps());
        let zk_node = net.add_node("coord");
        let other = net.add_node("other");
        let svc = CoordService::new(&sim, &net, zk_node, SimDuration::from_millis(100));
        (sim, net, svc, other)
    }

    #[test]
    fn create_get_delete() {
        let (_sim, _net, svc, _) = setup();
        svc.create("/a/b", Bytes::from_static(b"v1"), None);
        assert_eq!(svc.get_data("/a/b"), Some(Bytes::from_static(b"v1")));
        assert!(svc.exists("/a/b"));
        svc.set_data("/a/b", Bytes::from_static(b"v2"));
        assert_eq!(svc.get_data("/a/b"), Some(Bytes::from_static(b"v2")));
        svc.delete("/a/b");
        assert!(!svc.exists("/a/b"));
        assert_eq!(svc.get_data("/a/b"), None);
    }

    #[test]
    fn children_lists_prefix_only() {
        let (_sim, _net, svc, _) = setup();
        for p in ["/live/a", "/live/b", "/live/c", "/thresholds/a", "/liv"] {
            svc.create(p, Bytes::new(), None);
        }
        assert_eq!(
            svc.children("/live/"),
            vec!["/live/a", "/live/b", "/live/c"]
        );
        assert_eq!(svc.children("/none/"), Vec::<String>::new());
    }

    #[test]
    fn watches_deliver_events_over_network() {
        let (sim, _net, svc, watcher) = setup();
        let events: Rc<RefCell<Vec<WatchEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let ev2 = events.clone();
        svc.watch_prefix("/live/", watcher, move |e| ev2.borrow_mut().push(e));
        svc.create("/live/x", Bytes::new(), None);
        svc.set_data("/live/x", Bytes::from_static(b"1"));
        svc.delete("/live/x");
        svc.create("/other/y", Bytes::new(), None); // not under the prefix
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            *events.borrow(),
            vec![
                WatchEvent::Created("/live/x".into()),
                WatchEvent::DataChanged("/live/x".into()),
                WatchEvent::Deleted("/live/x".into()),
            ]
        );
    }

    #[test]
    fn watch_events_not_delivered_to_dead_node() {
        let (sim, net, svc, watcher) = setup();
        let events = Rc::new(RefCell::new(Vec::new()));
        let ev2 = events.clone();
        svc.watch_prefix("/", watcher, move |e| ev2.borrow_mut().push(e));
        net.crash(watcher);
        svc.create("/x", Bytes::new(), None);
        sim.run_for(SimDuration::from_secs(1));
        assert!(events.borrow().is_empty());
    }

    #[test]
    fn unwatch_stops_events() {
        let (sim, _net, svc, watcher) = setup();
        let events = Rc::new(RefCell::new(Vec::new()));
        let ev2 = events.clone();
        let wid = svc.watch_prefix("/", watcher, move |e| ev2.borrow_mut().push(e));
        svc.unwatch(wid);
        svc.create("/x", Bytes::new(), None);
        sim.run_for(SimDuration::from_secs(1));
        assert!(events.borrow().is_empty());
    }

    #[test]
    fn session_expiry_removes_ephemerals_and_notifies() {
        let (sim, _net, svc, watcher) = setup();
        let sid = svc.create_session(watcher, SimDuration::from_secs(1));
        svc.create("/live/w", Bytes::new(), Some(sid));
        svc.create("/thresholds/w", Bytes::new(), None);
        let events = Rc::new(RefCell::new(Vec::new()));
        let ev2 = events.clone();
        svc.watch_prefix("/live/", watcher, move |e| ev2.borrow_mut().push(e));

        // Touch regularly for 3 seconds: session stays alive.
        for i in 1..=30u64 {
            let svc2 = Rc::clone(&svc);
            sim.schedule_at(SimTime::from_millis(i * 100), move || svc2.touch(sid));
        }
        sim.run_until(SimTime::from_secs(3));
        assert!(svc.exists("/live/w"));
        assert!(svc.session_alive(sid));

        // Stop touching: expires ~1s later.
        sim.run_until(SimTime::from_secs(6));
        assert!(!svc.session_alive(sid));
        assert!(!svc.exists("/live/w"));
        assert!(
            svc.exists("/thresholds/w"),
            "persistent znode must survive expiry"
        );
        assert_eq!(
            *events.borrow(),
            vec![WatchEvent::Deleted("/live/w".into())]
        );
        assert_eq!(svc.expired_session_count(), 1);
    }

    /// Regression (CD001): a single sweep expiring many sessions used to
    /// process them in `sessions` HashMap order, so the ephemeral-delete
    /// watch events reached watchers in a per-process order. They must
    /// arrive in session-id order.
    #[test]
    fn mass_expiry_fires_watches_in_session_order() {
        let (sim, _net, svc, watcher) = setup();
        let mut paths = Vec::new();
        for _ in 0..12 {
            let sid = svc.create_session(watcher, SimDuration::from_secs(1));
            let path = format!("/live/{:04}", sid.0);
            svc.create(&path, Bytes::new(), Some(sid));
            paths.push(path);
        }
        let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let ev2 = events.clone();
        svc.watch_prefix("/live/", watcher, move |e| {
            ev2.borrow_mut().push(e.path().to_owned());
        });
        // No touches: every session expires in the same sweep tick.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(svc.expired_session_count(), 12);
        assert_eq!(
            *events.borrow(),
            paths,
            "expiry watch events must arrive in session-id order"
        );
    }

    #[test]
    fn clean_close_also_removes_ephemerals() {
        let (_sim, _net, svc, watcher) = setup();
        let sid = svc.create_session(watcher, SimDuration::from_secs(1));
        svc.create("/live/w", Bytes::new(), Some(sid));
        svc.close_session(sid);
        assert!(!svc.exists("/live/w"));
        assert!(!svc.session_alive(sid));
    }

    #[test]
    fn touch_on_expired_session_is_ignored() {
        let (sim, _net, svc, watcher) = setup();
        let sid = svc.create_session(watcher, SimDuration::from_millis(200));
        sim.run_until(SimTime::from_secs(2));
        assert!(!svc.session_alive(sid));
        svc.touch(sid); // must not resurrect
        assert!(!svc.session_alive(sid));
    }
}
