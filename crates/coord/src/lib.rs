//! ZooKeeper-like coordination substrate for the Cumulo stack.
//!
//! The paper (§3.3) exchanges heartbeats between the recovery manager and
//! the key-value clients/servers via ZooKeeper, and suggests persisting the
//! recovery manager's threshold timestamps there so a restarted recovery
//! manager can catch up. This crate provides the corresponding substrate:
//!
//! * a flat namespace of **znodes** holding small byte payloads, either
//!   *persistent* or *ephemeral* (bound to a session);
//! * **sessions** kept alive by heartbeat touches and expired by the
//!   service when touches stop arriving (crash detection);
//! * **prefix watches** delivering created/changed/deleted events to a
//!   watcher node over the simulated network.
//!
//! The service itself runs on a node of the [`cumulo_sim::Network`];
//! clients interact through [`CoordClient`], which models the RPC round
//! trips, so a crashed or partitioned component really does stop
//! heartbeating — exactly the failure-detection path the paper relies on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod service;

pub use client::CoordClient;
pub use service::{CoordService, SessionId, WatchEvent, WatchId};
