//! Client-side handle to the coordination service, paying RPC latency.
//!
//! Fire-and-forget operations (touch, set_data, delete) cost one network
//! message; read operations cost a round trip and deliver their result
//! through a callback at the caller's node.

use crate::service::{CoordService, SessionId, WatchEvent, WatchId};
use bytes::Bytes;
use cumulo_sim::{Network, NodeId, Sim, SimDuration};
use std::fmt;
use std::rc::Rc;

/// A component's connection to the coordination service.
///
/// Cheap to clone; all clones share the same identity (`from` node).
#[derive(Clone)]
pub struct CoordClient {
    _sim: Sim,
    net: Rc<Network>,
    svc: Rc<CoordService>,
    from: NodeId,
}

impl fmt::Debug for CoordClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoordClient")
            .field("from", &self.from)
            .finish()
    }
}

impl CoordClient {
    /// Creates a client for the component running on node `from`.
    pub fn new(sim: &Sim, net: &Rc<Network>, svc: &Rc<CoordService>, from: NodeId) -> CoordClient {
        CoordClient {
            _sim: sim.clone(),
            net: Rc::clone(net),
            svc: Rc::clone(svc),
            from,
        }
    }

    /// The node this client sends from.
    pub fn from_node(&self) -> NodeId {
        self.from
    }

    /// Opens a session with the given timeout; `done` runs at the caller
    /// with the new session id.
    pub fn create_session(&self, timeout: SimDuration, done: impl FnOnce(SessionId) + 'static) {
        let svc = Rc::clone(&self.svc);
        let net = Rc::clone(&self.net);
        let from = self.from;
        let to = svc.node();
        self.net.send(from, to, 64, move || {
            let sid = svc.create_session(from, timeout);
            net.send(to, from, 64, move || done(sid));
        });
    }

    /// Sends a liveness touch for `session` (fire and forget).
    pub fn touch(&self, session: SessionId) {
        let svc = Rc::clone(&self.svc);
        self.net
            .send(self.from, svc.node(), 48, move || svc.touch(session));
    }

    /// Closes `session` cleanly, removing its ephemeral znodes.
    pub fn close_session(&self, session: SessionId) {
        let svc = Rc::clone(&self.svc);
        self.net.send(self.from, svc.node(), 48, move || {
            svc.close_session(session)
        });
    }

    /// Creates or replaces a znode (fire and forget).
    pub fn create(&self, path: &str, data: Bytes, ephemeral_owner: Option<SessionId>) {
        let svc = Rc::clone(&self.svc);
        let path = path.to_owned();
        let size = 64 + path.len() + data.len();
        self.net.send(self.from, svc.node(), size, move || {
            svc.create(&path, data, ephemeral_owner)
        });
    }

    /// Updates (or creates persistent) znode data (fire and forget).
    pub fn set_data(&self, path: &str, data: Bytes) {
        let svc = Rc::clone(&self.svc);
        let path = path.to_owned();
        let size = 64 + path.len() + data.len();
        self.net.send(self.from, svc.node(), size, move || {
            svc.set_data(&path, data)
        });
    }

    /// Deletes a znode (fire and forget).
    pub fn delete(&self, path: &str) {
        let svc = Rc::clone(&self.svc);
        let path = path.to_owned();
        self.net
            .send(self.from, svc.node(), 64 + path.len(), move || {
                svc.delete(&path)
            });
    }

    /// Reads znode data; `done` runs at the caller with the result.
    pub fn get_data(&self, path: &str, done: impl FnOnce(Option<Bytes>) + 'static) {
        let svc = Rc::clone(&self.svc);
        let net = Rc::clone(&self.net);
        let from = self.from;
        let to = svc.node();
        let path = path.to_owned();
        self.net.send(from, to, 64 + path.len(), move || {
            let data = svc.get_data(&path);
            let size = 64 + data.as_ref().map(|d| d.len()).unwrap_or(0);
            net.send(to, from, size, move || done(data));
        });
    }

    /// Lists paths under `prefix`; `done` runs at the caller.
    pub fn children(&self, prefix: &str, done: impl FnOnce(Vec<String>) + 'static) {
        let svc = Rc::clone(&self.svc);
        let net = Rc::clone(&self.net);
        let from = self.from;
        let to = svc.node();
        let prefix = prefix.to_owned();
        self.net.send(from, to, 64 + prefix.len(), move || {
            let kids = svc.children(&prefix);
            let size = 64 + kids.iter().map(|k| k.len()).sum::<usize>();
            net.send(to, from, size, move || done(kids));
        });
    }

    /// Registers a prefix watch whose callback runs at this client's node;
    /// `registered` runs once the watch is installed.
    pub fn watch_prefix(
        &self,
        prefix: &str,
        cb: impl Fn(WatchEvent) + 'static,
        registered: impl FnOnce(WatchId) + 'static,
    ) {
        let svc = Rc::clone(&self.svc);
        let net = Rc::clone(&self.net);
        let from = self.from;
        let to = svc.node();
        let prefix = prefix.to_owned();
        self.net.send(from, to, 64 + prefix.len(), move || {
            let wid = svc.watch_prefix(&prefix, from, cb);
            net.send(to, from, 32, move || registered(wid));
        });
    }

    /// Removes a previously registered watch (fire and forget).
    pub fn unwatch(&self, id: WatchId) {
        let svc = Rc::clone(&self.svc);
        self.net
            .send(self.from, svc.node(), 32, move || svc.unwatch(id));
    }

    /// Direct (non-RPC) access to the service, for assertions in tests and
    /// for the harness to inspect state without perturbing the simulation.
    pub fn service(&self) -> &Rc<CoordService> {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulo_sim::{LatencyConfig, SimTime};
    use std::cell::{Cell, RefCell};

    fn setup() -> (Sim, Rc<Network>, CoordClient) {
        let sim = Sim::new(3);
        let net = Network::new(&sim, LatencyConfig::lan_100mbps());
        let zk = net.add_node("coord");
        let me = net.add_node("component");
        let svc = CoordService::new(&sim, &net, zk, SimDuration::from_millis(100));
        let client = CoordClient::new(&sim, &net, &svc, me);
        (sim, net, client)
    }

    #[test]
    fn round_trip_create_and_get() {
        let (sim, _net, client) = setup();
        client.create("/x", Bytes::from_static(b"hello"), None);
        let got: Rc<RefCell<Option<Option<Bytes>>>> = Rc::new(RefCell::new(None));
        let g = got.clone();
        client.get_data("/x", move |d| *g.borrow_mut() = Some(d));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*got.borrow(), Some(Some(Bytes::from_static(b"hello"))));
    }

    #[test]
    fn session_lifecycle_through_client() {
        let (sim, _net, client) = setup();
        let sid: Rc<Cell<Option<SessionId>>> = Rc::new(Cell::new(None));
        let s2 = sid.clone();
        client.create_session(SimDuration::from_millis(500), move |s| s2.set(Some(s)));
        sim.run_until(SimTime::from_millis(100));
        let session = sid.get().expect("session created");
        client.create("/live/me", Bytes::new(), Some(session));
        sim.run_until(SimTime::from_millis(200));
        assert!(client.service().exists("/live/me"));
        // No touches: expires.
        sim.run_until(SimTime::from_secs(3));
        assert!(!client.service().exists("/live/me"));
    }

    #[test]
    fn dead_component_stops_heartbeating_and_expires() {
        let (sim, net, client) = setup();
        let sid: Rc<Cell<Option<SessionId>>> = Rc::new(Cell::new(None));
        let s2 = sid.clone();
        client.create_session(SimDuration::from_millis(300), move |s| s2.set(Some(s)));
        sim.run_until(SimTime::from_millis(50));
        let session = sid.get().unwrap();
        client.create("/live/me", Bytes::new(), Some(session));

        // Heartbeat every 100ms via timer; crash the component at 1s.
        let c2 = client.clone();
        cumulo_sim::every(&sim, SimDuration::from_millis(100), move || {
            c2.touch(session)
        });
        sim.run_until(SimTime::from_millis(900));
        assert!(client.service().session_alive(session));
        net.crash(client.from_node());
        sim.run_until(SimTime::from_secs(3));
        assert!(!client.service().session_alive(session));
        assert!(!client.service().exists("/live/me"));
    }

    #[test]
    fn children_round_trip() {
        let (sim, _net, client) = setup();
        client.create("/t/a", Bytes::new(), None);
        client.create("/t/b", Bytes::new(), None);
        let got: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        client.children("/t/", move |kids| *g.borrow_mut() = kids);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*got.borrow(), vec!["/t/a".to_owned(), "/t/b".to_owned()]);
    }

    #[test]
    fn watch_through_client() {
        let (sim, _net, client) = setup();
        let events: Rc<RefCell<Vec<WatchEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let ev = events.clone();
        client.watch_prefix("/w/", move |e| ev.borrow_mut().push(e), |_| {});
        sim.run_until(SimTime::from_millis(50));
        client.create("/w/1", Bytes::new(), None);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*events.borrow(), vec![WatchEvent::Created("/w/1".into())]);
    }
}
