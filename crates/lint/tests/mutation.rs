//! Seeded mutation test: builds a scratch workspace on disk, injects a
//! CD001 violation at a seeded-random position in an otherwise clean
//! module, and asserts the full pipeline (walker → lexer → rules →
//! suppressions) detects exactly that violation. This is the linter's
//! own "does the alarm actually ring" check — a lexer or walker
//! regression that silently drops files/violations fails here, not in a
//! future baseline-divergence hunt.

use cumulo_lint::lint_workspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

/// Clean statements the scratch module is assembled from. None of them
/// trips any rule.
const CLEAN_STMTS: &[&str] = &[
    "    let a = keyed.len();",
    "    let b: u64 = keyed.values().sum();",
    "    let c = keyed.values().copied().max();",
    "    sink(a as u64);",
    "    sink(b);",
    "    sink(c.unwrap_or(0));",
];

/// CD001 violations to inject, one at a time.
const VIOLATIONS: &[&str] = &[
    "    for (k, v) in keyed.iter() { sink(*k + *v); }",
    "    let leak: Vec<u64> = keyed.keys().copied().collect();",
    "    for k in keyed.keys() { sink(*k); }",
];

fn scratch_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cumulo_lint_mutation_{}_{tag}", std::process::id()))
}

fn write_scratch_workspace(root: &Path, module_body: &str) {
    let src = root.join("m").join("src");
    fs::create_dir_all(&src).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\n    \"m\",\n]\n",
    )
    .unwrap();
    fs::write(
        root.join("m").join("Cargo.toml"),
        "[package]\nname = \"m\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    fs::write(src.join("lib.rs"), "mod mutated;\n").unwrap();
    fs::write(src.join("mutated.rs"), module_body).unwrap();
}

fn module_with(stmts: &[&str]) -> String {
    let mut out = String::from(
        "use std::collections::HashMap;\n\n\
         fn exercise(keyed: &HashMap<u64, u64>) {\n",
    );
    for s in stmts {
        out.push_str(s);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[test]
fn injected_cd001_is_detected_clean_module_is_not() {
    let mut rng = StdRng::seed_from_u64(0x00C0_D001);
    for round in 0..8u32 {
        let root = scratch_root(&round.to_string());
        let _ = fs::remove_dir_all(&root);

        // Baseline: the clean module must produce zero findings.
        let clean = module_with(CLEAN_STMTS);
        write_scratch_workspace(&root, &clean);
        let report = lint_workspace(&root);
        assert!(
            report.findings.is_empty(),
            "round {round}: clean scratch module produced findings: {:?}",
            report.findings
        );
        assert_eq!(
            report.files_scanned, 2,
            "round {round}: walker must reach lib.rs and mutated.rs"
        );

        // Mutate: splice one violation at a seeded-random statement slot.
        let violation = VIOLATIONS[rng.gen_range(0usize..VIOLATIONS.len())];
        let slot = rng.gen_range(0usize..CLEAN_STMTS.len() + 1);
        let mut stmts: Vec<&str> = CLEAN_STMTS.to_vec();
        stmts.insert(slot, violation);
        let mutated = module_with(&stmts);
        write_scratch_workspace(&root, &mutated);
        let report = lint_workspace(&root);
        let expected_line = 3 + slot as u32 + 1; // header is 3 lines, slots follow
        assert_eq!(
            report
                .findings
                .iter()
                .map(|f| (f.file.as_str(), f.line, f.rule))
                .collect::<Vec<_>>(),
            vec![("m/src/mutated.rs", expected_line, "CD001")],
            "round {round}: injected violation (slot {slot}) not pinpointed"
        );

        let _ = fs::remove_dir_all(&root);
    }
}
