//! Fixture corpus: every file under `tests/fixtures/` is linted as if it
//! sat at a virtual workspace path, and the findings must match the
//! trailing `//~ CDnnn` markers exactly — same line, same rule id, no
//! extras in either direction. Fixtures are lexed, never compiled, so
//! they can show violations without breaking the build.

use cumulo_lint::rules::lint_str;

/// (fixture name, virtual workspace path it is linted under, source).
/// The virtual path drives the path-scoped rules: CD003 is exempt under
/// `crates/sim`, CD005 only fires on the core client surface, CD006 only
/// in scheduling/output paths.
const FIXTURES: &[(&str, &str, &str)] = &[
    (
        "cd001_bad.rs",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/cd001_bad.rs"),
    ),
    (
        "cd001_good.rs",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/cd001_good.rs"),
    ),
    (
        "cd002_cd003.rs",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/cd002_cd003.rs"),
    ),
    (
        "cd003_sim_ok.rs",
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/cd003_sim_ok.rs"),
    ),
    (
        "cd004_rng.rs",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/cd004_rng.rs"),
    ),
    (
        "cd005_surface.rs",
        "crates/core/src/txn_client.rs",
        include_str!("fixtures/cd005_surface.rs"),
    ),
    (
        "cd006_sched.rs",
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/cd006_sched.rs"),
    ),
    (
        "cd000_allows.rs",
        "crates/store/src/fixture.rs",
        include_str!("fixtures/cd000_allows.rs"),
    ),
];

fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for id in line[pos + 3..].split_whitespace() {
                out.push((i as u32 + 1, id.to_owned()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn fixtures_match_expected_findings() {
    for (name, vpath, src) in FIXTURES {
        let expected = expected_markers(src);
        let mut got: Vec<(u32, String)> = lint_str(vpath, src)
            .into_iter()
            .map(|f| (f.line, f.rule.to_owned()))
            .collect();
        got.sort();
        assert_eq!(
            got, expected,
            "fixture {name} (as {vpath}): findings diverge from //~ markers"
        );
    }
}

#[test]
fn every_rule_id_is_exercised_by_some_fixture() {
    let exercised: std::collections::BTreeSet<String> = FIXTURES
        .iter()
        .flat_map(|(_, _, src)| expected_markers(src))
        .map(|(_, id)| id)
        .collect();
    for rule in cumulo_lint::rules::RULES {
        assert!(
            exercised.contains(rule.id),
            "rule {} has no failing fixture coverage",
            rule.id
        );
    }
}
