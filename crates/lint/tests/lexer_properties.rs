//! Property tests for the lexer: it is fed every file the workspace
//! compiles, so it must never panic and must keep its line accounting
//! honest on arbitrary input — including byte soup that is nothing like
//! Rust, unterminated strings, and nested comment edge cases.

use cumulo_lint::lexer::lex;
use proptest::prelude::*;

proptest! {
    /// Arbitrary (lossily decoded) bytes: no panics, and the reported
    /// line count and every token/directive line stay consistent with
    /// the source's actual newline count.
    #[test]
    fn lexer_survives_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        let newlines = src.matches('\n').count() as u32;
        prop_assert_eq!(lexed.lines, newlines + 1);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= lexed.lines);
        }
        for a in &lexed.allows {
            prop_assert!(a.line >= 1 && a.line <= lexed.lines);
        }
    }

    /// Rust-ish soup assembled from tricky fragments (raw strings,
    /// nested block comments, char literals vs lifetimes, directives):
    /// still no panics, still consistent line accounting.
    #[test]
    fn lexer_survives_rustish_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src: String = picks
            .iter()
            .map(|i| FRAGMENTS[*i])
            .collect::<Vec<_>>()
            .join("\n");
        let lexed = lex(&src);
        let newlines = src.matches('\n').count() as u32;
        prop_assert_eq!(lexed.lines, newlines + 1);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= lexed.lines);
        }
    }
}

const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let s = \"multi\\nline \\\" escape\";",
    "let r = r#\"raw \" with quote\"#;",
    "let r2 = r##\"nested \"# hash\"##;",
    "/* block /* nested */ still comment */",
    "/* unterminated",
    "// line comment with \"quote\" and 'tick'",
    "// lint:allow(CD001, reason = \"soup\")",
    "// lint:allow(CD001)",
    "// lint:allow(",
    "let c = 'x';",
    "let nl = '\\n';",
    "let lt: &'static str = \"lifetime vs char\";",
    "for (k, v) in m.iter() { body(k, v); }",
    "\"unterminated string",
    "r#\"unterminated raw",
    "let weird = 0xFFu64 + 1_000;",
    "}}}}",
    "((((",
    "#[derive(Hash, Eq)] struct K;",
];
