// Fixture: the cumulo-core public client surface must never panic on
// misuse (PR 5 contract). Linted as crates/core/src/txn_client.rs.

impl Txn {
    pub fn read(&self) -> u64 {
        self.slot.get().unwrap() //~ CD005
    }

    pub fn must(&self, ok: bool) {
        if !ok {
            panic!("misuse"); //~ CD005
        }
    }

    pub fn lookup(&self, k: u64) -> u64 {
        self.table.get(&k).copied().expect("present") //~ CD005
    }

    pub fn later(&self) {
        todo!() //~ CD005
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u64).unwrap();
    }
}
