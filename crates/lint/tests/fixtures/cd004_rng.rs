// Fixture: ambient RNG anywhere, and jitter drawn in startup paths.
// Linted as crates/store/src/fixture.rs.

fn seed_from_os() -> u64 {
    let mut rng = rand::thread_rng(); //~ CD004
    next(&mut rng)
}

fn pick() -> u64 {
    rand::random() //~ CD004
}

struct Component;

impl Component {
    fn start(&self, sim: &Sim) {
        let _phase = sim.jitter(interval(), 0.5); //~ CD004
    }

    fn with_timer(&self, sim: &Sim) {
        let _phase = sim.jitter(interval(), 0.5); //~ CD004
    }

    fn tick(&self, sim: &Sim) {
        // Fine: periodic steady-state draws are part of the calibrated
        // stream; only startup-path draws shift phases.
        let _phase = sim.jitter(interval(), 0.5);
    }
}
