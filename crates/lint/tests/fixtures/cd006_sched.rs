// Fixture: derive(Hash)-keyed collections declared in scheduling/output
// paths are flagged for review. Linted as crates/bench/src/fixture.rs.

#[derive(Hash, PartialEq, Eq)]
struct LaneKey {
    region: u64,
    backup: u32,
}

struct Tracker {
    lanes: HashMap<LaneKey, u64>, //~ CD006
    by_name: HashMap<String, u64>,
}
