// Fixture: map iterations whose order provably cannot escape — none of
// these may produce findings. Linted as crates/store/src/fixture.rs.
use std::collections::HashMap;

fn total(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum()
}

fn biggest(m: &HashMap<u64, u64>) -> Option<u64> {
    m.values().copied().max()
}

fn any_zero(m: &HashMap<u64, u64>) -> bool {
    m.values().any(|v| *v == 0)
}

fn sorted_keys(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut keys: Vec<u64> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

fn annotated(m: &HashMap<u64, u64>) {
    // lint:allow(CD001, reason = "fixture: demonstrates a correctly used directive")
    for k in m.keys() {
        emit(*k);
    }
}
