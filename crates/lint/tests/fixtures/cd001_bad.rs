// Fixture: hash-ordered iteration escaping into ordered context.
// Linted as crates/store/src/fixture.rs. Not compiled.
use std::collections::HashMap;

fn emit_all(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, v) in m.iter() { //~ CD001
        out.push(k + v);
    }
    out
}

fn escape_keys(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect() //~ CD001
}

fn bare_for(set: &std::collections::HashSet<u64>) {
    for k in set { //~ CD001
        emit(*k);
    }
}

fn local_binding() -> Vec<u64> {
    let m = HashMap::new();
    m.into_values().collect() //~ CD001
}
