// Fixture: directive hygiene. Linted as crates/store/src/fixture.rs.
use std::collections::HashMap;

// lint:allow(CD001) //~ CD000
fn reasonless(m: &HashMap<u64, u64>) {
    for k in m.keys() { //~ CD001
        emit(*k);
    }
}

// lint:allow(BOGUS, reason = "not a rule id") //~ CD000
fn malformed() {}

// lint:allow(CD002, reason = "suppresses nothing on this line or the next") //~ CD000
fn unused_directive() {}

fn proper(m: &HashMap<u64, u64>) {
    // lint:allow(CD001, reason = "fixture: a used directive is not reported")
    for k in m.keys() {
        emit(*k);
    }
}
