// Fixture: randomly seeded hashers and wall-clock time sources.
// Linted as crates/store/src/fixture.rs (i.e. outside crates/sim).

fn fresh_hasher() -> std::collections::hash_map::RandomState { //~ CD002
    std::collections::hash_map::RandomState::new() //~ CD002
}

fn digest() -> u64 {
    let h = std::collections::hash_map::DefaultHasher::new(); //~ CD002
    finish(h)
}

fn elapsed() -> u64 {
    let t = std::time::Instant::now(); //~ CD003
    since(t)
}

fn epoch() -> u64 {
    let s = std::time::SystemTime::now(); //~ CD003
    since_epoch(s)
}
