// Fixture: the simulator itself is the one place allowed to name
// wall-clock types (it defines the virtual clock and its docs compare
// against real time). Linted as crates/sim/src/fixture.rs — no findings.

fn virtual_now(sim: &Sim) -> SimTime {
    sim.now()
}

fn doc_example() {
    let _t = std::time::Instant::now();
}
