//! A small hand-rolled Rust lexer that is comment-, string- and
//! raw-string-aware.
//!
//! The linter's rules work on token streams, never on raw text, so a
//! `HashMap` mentioned in a doc comment or inside a string literal can
//! never produce a finding. The lexer does *not* attempt full Rust
//! fidelity — it only has to be sound about three things:
//!
//! 1. what is a comment / string / char literal (so rule patterns never
//!    match inside them),
//! 2. line accounting (findings and suppressions are line-addressed),
//! 3. never panicking on arbitrary input (it runs over every file the
//!    module walker reaches, plus fuzzed inputs in its own tests).
//!
//! Suppression comments (see [`AllowDirective`]) are recognised here,
//! because after lexing the comment text is gone.

/// Token classes the rule engine distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `HashMap`, `fn`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `<`, `{`, ...).
    Punct,
    /// A string literal (`"..."`, `r#"..."#`, `b"..."`); `text` holds the
    /// raw contents without quotes or escape processing.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal (integers and floats, any radix).
    Num,
    /// A lifetime or loop label (`'a`, `'outer`); `text` omits the quote.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind contents).
    pub text: String,
}

/// A parsed `lint:allow` suppression comment.
///
/// The concrete syntax is a line comment of the form
/// `// lint:allow(CD001, reason = "order-independent sum")` — one or
/// more rule ids followed by a mandatory, non-empty reason string. A
/// directive suppresses matching findings on its own line and on the
/// line directly below it, so it can sit above a statement or trail it.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule ids listed in the directive (e.g. `["CD001"]`).
    pub rules: Vec<String>,
    /// The reason string, when present and well-formed.
    pub reason: Option<String>,
    /// `None` when the directive parsed cleanly; otherwise a short
    /// description of what is malformed (reported as CD000).
    pub parse_error: Option<String>,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression directives found in line comments.
    pub allows: Vec<AllowDirective>,
    /// Total number of source lines (a trailing newline does not start a
    /// new line; the empty file has one line).
    pub lines: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and suppression directives. Never panics.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed {
        lines: 1,
        ..Lexed::default()
    };
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' | 0x0b | 0x0c => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start.min(src.len())..i];
                // Doc comments (`///`, `//!`) are rendered documentation,
                // not directives — they may *mention* the syntax freely.
                let is_doc = text.starts_with('/') || text.starts_with('!');
                if !is_doc {
                    if let Some(pos) = text.find("lint:allow(") {
                        out.allows.push(parse_allow(&text[pos..], line));
                    }
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; unterminated comments swallow the
                // rest of the file (like rustc, minus the error).
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tline = line;
                let (content, ni, nl) = scan_string(src, i + 1, line);
                out.tokens.push(Token {
                    line: tline,
                    kind: TokKind::Str,
                    text: content,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni, nl) = scan_quote(src, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && b[start..i].iter().any(|x| !x.is_ascii_alphanumeric())
                    {
                        // Float exponent sign (`1.5e-3`); the any() guard
                        // keeps hex like 0x1E-2 from consuming the sign.
                        i += 1;
                    } else if d == b'.'
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit()
                        && !b[start..i].contains(&b'.')
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Num,
                    text: src[start..i].to_owned(),
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                // String/char literal prefixes: r"", r#""#, b"", br#""#,
                // b'', c"", cr#""#. A raw *identifier* (r#fn) stays an
                // identifier.
                let next = b.get(i).copied();
                match (ident, next) {
                    ("r" | "br" | "rb" | "b" | "c" | "cr", Some(b'"')) => {
                        if ident.contains('r') && ident != "b" {
                            let (content, ni, nl) = scan_raw_string(src, i + 1, line, 0);
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Str,
                                text: content,
                            });
                            i = ni;
                            line = nl;
                        } else {
                            let (content, ni, nl) = scan_string(src, i + 1, line);
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Str,
                                text: content,
                            });
                            i = ni;
                            line = nl;
                        }
                    }
                    ("r" | "br" | "rb" | "cr", Some(b'#')) => {
                        // Count the #s; a quote after them means a raw
                        // string, an identifier char means a raw ident.
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            let hashes = j - i;
                            let (content, ni, nl) = scan_raw_string(src, j + 1, line, hashes);
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Str,
                                text: content,
                            });
                            i = ni;
                            line = nl;
                        } else if ident == "r" && j == i + 1 && j < b.len() && is_ident_start(b[j])
                        {
                            let start2 = j;
                            let mut k = j;
                            while k < b.len() && is_ident_continue(b[k]) {
                                k += 1;
                            }
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Ident,
                                text: src[start2..k].to_owned(),
                            });
                            i = k;
                        } else {
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Ident,
                                text: ident.to_owned(),
                            });
                        }
                    }
                    ("b", Some(b'\'')) => {
                        let (tok, ni, nl) = scan_quote(src, i, line);
                        out.tokens.push(tok);
                        i = ni;
                        line = nl;
                    }
                    _ => out.tokens.push(Token {
                        line,
                        kind: TokKind::Ident,
                        text: ident.to_owned(),
                    }),
                }
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                });
                i += 1;
            }
        }
    }
    out.lines = line;
    out
}

/// Scans a non-raw string body starting *after* the opening quote.
/// Returns (contents, index after closing quote, line after).
fn scan_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => {
                return (src[start..i].to_owned(), i + 1, line);
            }
            _ => i += 1,
        }
    }
    (src[start.min(src.len())..].to_owned(), i, line)
}

/// Scans a raw string body starting *after* the opening quote, expecting
/// `hashes` closing `#`s after the closing quote.
fn scan_raw_string(src: &str, mut i: usize, mut line: u32, hashes: usize) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return (src[start..i].to_owned(), i + 1 + hashes, line);
        } else {
            i += 1;
        }
    }
    (src[start.min(src.len())..].to_owned(), i, line)
}

/// Scans at a `'` (or `b'`): yields a char literal, lifetime or label.
/// `i` points at the quote (for `b''`, at the `'`). Returns the token,
/// the index after it and the updated line.
fn scan_quote(src: &str, i: usize, mut line: u32) -> (Token, usize, u32) {
    let b = src.as_bytes();
    let q = i; // index of the opening quote
    debug_assert!(b.get(q) == Some(&b'\''));
    let tline = line;
    if let Some(&n) = b.get(q + 1) {
        if n == b'\\' {
            // Escaped char literal: scan to the closing quote.
            let mut j = q + 2;
            // Skip the escaped character itself (covers \' and \\).
            j = (j + 1).min(b.len());
            while j < b.len() && b[j] != b'\'' {
                if b[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            let end = (j + 1).min(b.len());
            return (
                Token {
                    line: tline,
                    kind: TokKind::Char,
                    text: src[q + 1..j.min(src.len())].to_owned(),
                },
                end,
                line,
            );
        }
        if is_ident_start(n) {
            let mut j = q + 2;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') && j == q + 2 {
                // 'a' — a one-char literal.
                return (
                    Token {
                        line: tline,
                        kind: TokKind::Char,
                        text: src[q + 1..j].to_owned(),
                    },
                    j + 1,
                    line,
                );
            }
            // 'abc or 'a followed by non-quote: lifetime/label.
            return (
                Token {
                    line: tline,
                    kind: TokKind::Lifetime,
                    text: src[q + 1..j].to_owned(),
                },
                j,
                line,
            );
        }
        if n != b'\'' {
            // Something like '1' or '"': single-char literal when closed.
            if b.get(q + 2) == Some(&b'\'') {
                return (
                    Token {
                        line: tline,
                        kind: TokKind::Char,
                        text: src[q + 1..q + 2].to_owned(),
                    },
                    q + 3,
                    if n == b'\n' { line + 1 } else { line },
                );
            }
        }
    }
    // Lone or doubled quote: emit as punctuation and move one byte.
    (
        Token {
            line: tline,
            kind: TokKind::Punct,
            text: "'".to_owned(),
        },
        q + 1,
        line,
    )
}

/// Parses the inside of a `lint:allow(...)` comment. `text` starts at
/// `lint:allow(`.
fn parse_allow(text: &str, line: u32) -> AllowDirective {
    let mut d = AllowDirective {
        line,
        rules: Vec::new(),
        reason: None,
        parse_error: None,
    };
    let inner = &text["lint:allow(".len()..];
    let Some(close) = find_closing_paren(inner) else {
        d.parse_error = Some("unterminated lint:allow directive".to_owned());
        return d;
    };
    let inner = &inner[..close];
    for part in split_top_level_commas(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(rest) = part.strip_prefix("reason") {
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                d.parse_error = Some("malformed reason (expected `reason = \"...\"`)".to_owned());
                continue;
            };
            let rest = rest.trim();
            if rest.len() >= 2 && rest.starts_with('"') && rest.ends_with('"') {
                let r = &rest[1..rest.len() - 1];
                if r.trim().is_empty() {
                    d.parse_error = Some("empty reason string".to_owned());
                } else {
                    d.reason = Some(r.to_owned());
                }
            } else {
                d.parse_error = Some("reason must be a quoted string".to_owned());
            }
        } else if is_rule_id(part) {
            d.rules.push(part.to_owned());
        } else {
            d.parse_error = Some(format!("unrecognised item `{part}`"));
        }
    }
    if d.rules.is_empty() && d.parse_error.is_none() {
        d.parse_error = Some("no rule ids listed".to_owned());
    }
    d
}

/// `CD` followed by exactly three ASCII digits.
fn is_rule_id(s: &str) -> bool {
    s.len() == 5 && s.starts_with("CD") && s[2..].bytes().all(|b| b.is_ascii_digit())
}

/// Index of the `)` closing the directive, honouring quoted strings.
fn find_closing_paren(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ')' if !in_str => return Some(i),
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    None
}

/// Splits on commas outside quoted strings.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
// HashMap in a line comment
/* HashMap in /* a nested */ block comment */
let s = "HashMap in a string";
let r = r#"HashMap in a raw string"#;
let b = b"HashMap bytes";
let ok = 1;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_owned()), "{ids:?}");
        assert!(ids.contains(&"ok".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { 'outer: loop { break 'outer; } x }";
        let toks = lex(src);
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "outer"));
    }

    #[test]
    fn char_literals_including_escapes() {
        let toks = lex(r"let c = 'x'; let n = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars.len(), 4, "{chars:?}");
    }

    #[test]
    fn multiline_string_line_accounting() {
        let src = "let a = \"x\ny\nz\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
        assert_eq!(toks.lines, 4);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = "let a = r#\"say \"hi\" now\"#; let tail = 2;";
        let toks = lex(src);
        assert!(toks.tokens.iter().any(|t| t.text == "tail"));
        let s = toks.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "say \"hi\" now");
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let ids = idents("let r#fn = 1; r#match");
        assert!(ids.contains(&"fn".to_owned()));
        assert!(ids.contains(&"match".to_owned()));
    }

    #[test]
    fn allow_directive_roundtrip() {
        let src = "// lint:allow(CD001, reason = \"order-independent sum\")\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rules, vec!["CD001".to_owned()]);
        assert_eq!(a.reason.as_deref(), Some("order-independent sum"));
        assert!(a.parse_error.is_none());
        assert_eq!(a.line, 1);
    }

    #[test]
    fn allow_directive_multi_rule_and_malformed() {
        let l = lex("// lint:allow(CD001, CD006, reason = \"both fine\")");
        assert_eq!(l.allows[0].rules.len(), 2);
        let bad = lex("// lint:allow(CD001)");
        assert!(bad.allows[0].reason.is_none());
        let worse = lex("// lint:allow(CD001, reason = \"\")");
        assert!(worse.allows[0].parse_error.is_some());
        let unterminated = lex("// lint:allow(CD001, reason = \"x\"");
        assert!(unterminated.allows[0].parse_error.is_some());
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { x(1.5e-3); m.0.iter(); }");
        let nums: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0"));
        assert!(nums.contains(&"10"));
        assert!(nums.contains(&"1.5e-3"));
        assert!(toks.tokens.iter().any(|t| t.text == "iter"));
    }

    #[test]
    fn empty_and_pathological_inputs() {
        assert_eq!(lex("").lines, 1);
        lex("\"unterminated");
        lex("r#\"unterminated");
        lex("/* unterminated");
        lex("'");
        lex("''");
        lex("b'");
        lex("r#");
    }
}
