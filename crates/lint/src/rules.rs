//! The determinism rule engine.
//!
//! Rules run over the token stream of one file at a time (plus one
//! workspace-wide pre-pass collecting `derive(Hash)` type names for
//! CD006) and emit [`Finding`]s. Suppression is per-site via
//! `lint:allow` line comments that *must* carry a reason (see
//! [`crate::lexer::AllowDirective`]); directive hygiene itself is
//! enforced as rule CD000.
//!
//! # Rule catalogue
//!
//! | id | what it catches |
//! |-------|------------------------------------------------------------|
//! | CD000 | malformed / reason-less / unused `lint:allow` directives |
//! | CD001 | `HashMap`/`HashSet` iteration that may escape in nondeterministic order (no adjacent sort, no order-independent reduction in the same statement) |
//! | CD002 | `RandomState` / `DefaultHasher` / ambient hasher construction |
//! | CD003 | wall-clock time (`Instant`, `SystemTime`, `std::time`) outside `crates/sim` |
//! | CD004 | ambient RNG (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`) anywhere, and `.jitter(...)` drawn in constructor/startup paths |
//! | CD005 | `panic!` / `.unwrap()` / `.expect()` on `cumulo-core`'s public client surface (the no-panic contract) |
//! | CD006 | `derive(Hash)`-keyed `HashMap`/`HashSet` declared in scheduling or output paths (flagged for review) |
//!
//! The engine is deliberately heuristic: it has no type information, so
//! it tracks names whose declarations mention `HashMap`/`HashSet` in the
//! same file. A conservative false positive costs one annotated reason;
//! a silent false negative costs a baseline divergence hunt — the
//! trade-off is intentional.

use crate::lexer::{lex, Lexed, TokKind, Token};
use std::collections::BTreeSet;

/// One lint finding, addressed by workspace-relative file and line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule id (`CD001`, ...).
    pub rule: &'static str,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// The trimmed source line (capped), for context.
    pub excerpt: String,
}

/// Static metadata for one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The rule catalogue, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "CD000",
        summary: "lint:allow directive is malformed, missing a reason, or unused",
    },
    RuleInfo {
        id: "CD001",
        summary: "HashMap/HashSet iteration may escape in nondeterministic order",
    },
    RuleInfo {
        id: "CD002",
        summary: "randomly seeded hasher construction (RandomState/DefaultHasher)",
    },
    RuleInfo {
        id: "CD003",
        summary: "wall-clock time source outside crates/sim",
    },
    RuleInfo {
        id: "CD004",
        summary: "ambient RNG, or jitter drawn in a constructor/startup path",
    },
    RuleInfo {
        id: "CD005",
        summary: "panic!/unwrap/expect on cumulo-core's public client surface",
    },
    RuleInfo {
        id: "CD006",
        summary: "derive(Hash)-keyed collection in a scheduling/output path",
    },
];

/// Files forming `cumulo-core`'s public client surface — the PR 5
/// no-panic contract (typed `TxnError`s instead of panics on misuse).
pub const CORE_PUBLIC_SURFACE: &[&str] = &["crates/core/src/txn_client.rs"];

/// Map-iteration adaptors whose order is the hasher's order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Terminal adaptors that are order-independent reductions: iteration
/// order cannot reach the result.
const REDUCTIONS: &[&str] = &[
    "sum",
    "product",
    "count",
    "min",
    "max",
    "fold",
    "all",
    "any",
    "len",
    "is_empty",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "reduce",
];

/// Function-name prefixes treated as constructor/startup paths for
/// CD004's jitter check (ROADMAP: background timers keep fixed phases;
/// drawing jitter at construction shifts calibrated RNG streams).
const STARTUP_PREFIXES: &[&str] = &[
    "new", "build", "start", "init", "restart", "spawn", "boot", "setup", "with_", "default",
];

/// Lints a single in-memory file: lexes, runs every rule, applies
/// suppressions, and returns sorted findings. `derive(Hash)` names for
/// CD006 are collected from this file alone. This is the entry point
/// the fixture and mutation tests drive.
pub fn lint_str(rel: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let hash_types = hash_derived_types(&lexed.tokens);
    let raw = lint_tokens(rel, &lines, &lexed, &hash_types);
    let (mut findings, _used) = apply_allows(rel, &lines, &lexed, raw);
    findings.sort();
    findings
}

/// Collects `#[derive(..., Hash, ...)]` struct/enum names.
pub fn hash_derived_types(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_seq(toks, i, &["#", "[", "derive", "("]) {
            // Scan the derive list for `Hash`.
            let mut j = i + 4;
            let mut saw_hash = false;
            while j < toks.len() && !is_punct(&toks[j], ")") {
                if toks[j].kind == TokKind::Ident && toks[j].text == "Hash" {
                    saw_hash = true;
                }
                j += 1;
            }
            if saw_hash {
                // Find the following struct/enum name, skipping other
                // attributes and doc attrs.
                let mut k = j;
                while k < toks.len() {
                    if toks[k].kind == TokKind::Ident
                        && matches!(toks[k].text.as_str(), "struct" | "enum" | "union")
                    {
                        if let Some(name) = toks.get(k + 1) {
                            if name.kind == TokKind::Ident {
                                out.insert(name.text.clone());
                            }
                        }
                        break;
                    }
                    // Give up if we hit an item body first.
                    if is_punct(&toks[k], "{") || is_punct(&toks[k], ";") {
                        break;
                    }
                    k += 1;
                }
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Whether `rel` is a scheduling or output path for CD006: the event
/// kernel and its services (`crates/sim/src`), the bench/report layer
/// (`crates/bench/src`), and any metrics/trace/report module elsewhere.
fn is_sched_or_output_path(rel: &str) -> bool {
    let rel = rel.replace('\\', "/");
    rel.starts_with("crates/sim/src")
        || rel.starts_with("crates/bench/src")
        || rel.ends_with("/metrics.rs")
        || rel.ends_with("/trace.rs")
        || rel.ends_with("/report.rs")
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Whether the token sequence starting at `i` matches `pat` (idents and
/// puncts compared by text; string tokens never match).
fn is_seq(toks: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        toks.get(i + k)
            .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::Punct) && t.text == *p)
    })
}

fn excerpt(lines: &[&str], line: u32) -> String {
    let s = lines
        .get(line.saturating_sub(1) as usize)
        .copied()
        .unwrap_or("")
        .trim();
    let mut s = s.to_owned();
    if s.len() > 120 {
        let mut cut = 117;
        while cut > 0 && !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push_str("...");
    }
    s
}

/// Names whose declarations in this file mention `HashMap`/`HashSet`:
/// `name: ... HashMap<...>` ascriptions (locals, params, struct fields,
/// struct-literal inits) and `let name = HashMap::new()`-style bindings.
fn map_typed_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : <type containing HashMap/HashSet>`
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ":"))
            && !toks.get(i + 2).is_some_and(|t| is_punct(t, ":"))
            && !(i > 0 && is_punct(&toks[i - 1], ":"))
        {
            let mut angle = 0i32;
            for j in i + 2..(i + 42).min(toks.len()) {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "," | ";" | ")" | "{" | "=" | "|" if angle <= 0 => break,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    names.insert(toks[i].text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = ... HashMap::... / HashSet::...`
        if is_ident(&toks[i], "let") {
            let mut ni = i + 1;
            if toks.get(ni).is_some_and(|t| is_ident(t, "mut")) {
                ni += 1;
            }
            let Some(name) = toks.get(ni) else { continue };
            if name.kind != TokKind::Ident {
                continue;
            }
            if !toks.get(ni + 1).is_some_and(|t| is_punct(t, "=")) {
                continue;
            }
            for t in toks.iter().skip(ni + 2).take(78) {
                if is_punct(t, ";") {
                    break;
                }
                if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    names.insert(name.text.clone());
                    break;
                }
            }
        }
    }
    names
}

/// Identifier components of the method-receiver chain ending just
/// before the `.` at `dot`: for `self.v.borrow().keys()` with `dot` at
/// the final `.`, returns `[self, v, borrow]`.
fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = dot;
    let mut steps = 0;
    while k > 0 && steps < 16 {
        k -= 1;
        steps += 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Ident => out.push(t.text.clone()),
            // `:` is deliberately excluded: it would walk across a
            // struct-literal field boundary (`field: expr.iter()`) and
            // wrongly attribute the iteration to the field name.
            TokKind::Punct if matches!(t.text.as_str(), "." | "(" | ")" | "&" | "?") => {}
            _ => break,
        }
    }
    out
}

/// `[start, end)` token bounds of the statement containing `idx`; `end`
/// stops *at* the terminating `;` or at a `{` opening a block (so a
/// `for` header's statement is just the header).
fn stmt_bounds(toks: &[Token], idx: usize) -> (usize, usize) {
    let mut start = idx;
    while start > 0 {
        let t = &toks[start - 1];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let mut end = idx;
    let mut paren = 0i32;
    while end < toks.len() && end < idx + 240 {
        let t = &toks[end];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren <= 0 => break,
                "{" if paren <= 0 => break,
                _ => {}
            }
        }
        end += 1;
    }
    (start, end)
}

/// Whether `toks[range]` contains an order-independent reduction call,
/// a sort, or a collect into an ordered B-tree collection.
fn has_order_independent_marker(toks: &[Token], start: usize, end: usize) -> bool {
    for j in start..end.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "BTreeMap" || t.text == "BTreeSet" || t.text.starts_with("sort") {
            return true;
        }
        if REDUCTIONS.contains(&t.text.as_str()) {
            let next = toks.get(j + 1);
            if next.is_some_and(|n| is_punct(n, "(") || is_punct(n, ":")) {
                return true;
            }
        }
    }
    false
}

/// Whether the statement *after* `end` (which points at a `;`) sorts —
/// the `let mut v = map.iter().collect(); v.sort();` idiom.
fn next_stmt_sorts(toks: &[Token], end: usize) -> bool {
    if !toks.get(end).is_some_and(|t| is_punct(t, ";")) {
        return false;
    }
    let mut j = end + 1;
    let mut paren = 0i32;
    while j < toks.len() && j < end + 90 {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren <= 0 => return false,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && t.text.starts_with("sort") {
            return true;
        }
        j += 1;
    }
    false
}

/// Runs every rule over one lexed file, without suppression handling.
pub fn lint_tokens(
    rel: &str,
    lines: &[&str],
    lexed: &Lexed,
    hash_types: &BTreeSet<String>,
) -> Vec<Finding> {
    let rel_slash = rel.replace('\\', "/");
    let toks = &lexed.tokens;
    let map_names = map_typed_names(toks);
    let in_sim = rel_slash.starts_with("crates/sim");
    let core_surface = CORE_PUBLIC_SURFACE.contains(&rel_slash.as_str());
    let sched_out = is_sched_or_output_path(&rel_slash);

    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    let push = |seen: &mut BTreeSet<(u32, &'static str)>,
                findings: &mut Vec<Finding>,
                line: u32,
                rule: &'static str,
                message: String| {
        if seen.insert((line, rule)) {
            findings.push(Finding {
                file: rel_slash.clone(),
                line,
                rule,
                message,
                excerpt: excerpt(lines, line),
            });
        }
    };

    // Single pass with enclosing-fn and #[cfg(test)]-region tracking.
    let mut depth = 0usize;
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut cfg_test_pending = false;
    let mut cfg_test_depth: Option<usize> = None;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    if cfg_test_pending {
                        cfg_test_pending = false;
                        if cfg_test_depth.is_none() {
                            cfg_test_depth = Some(depth);
                        }
                    }
                }
                "}" => {
                    while fn_stack.last().is_some_and(|(_, d)| *d >= depth) {
                        fn_stack.pop();
                    }
                    if cfg_test_depth.is_some_and(|d| d >= depth) {
                        cfg_test_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    pending_fn = None;
                }
                _ => {}
            }
        }
        let in_test = cfg_test_depth.is_some();
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        pending_fn = Some(n.text.clone());
                    }
                }
            }
            "cfg"
                if is_seq(toks, i.saturating_sub(2), &["#", "["])
                    && is_seq(toks, i + 1, &["(", "test", ")"]) =>
            {
                cfg_test_pending = true;
            }
            // --- CD001: map iteration ----------------------------------
            m if ITER_METHODS.contains(&m)
                && i > 0
                && is_punct(&toks[i - 1], ".")
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) =>
            {
                let chain = receiver_chain(toks, i - 1);
                if chain.iter().any(|c| map_names.contains(c)) {
                    let (s, e) = stmt_bounds(toks, i);
                    if !has_order_independent_marker(toks, s, e) && !next_stmt_sorts(toks, e) {
                        let who = chain
                            .iter()
                            .find(|c| map_names.contains(c.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        push(
                            &mut seen,
                            &mut findings,
                            t.line,
                            "CD001",
                            format!(
                                "iteration over hash-ordered `{who}` via `.{m}()` escapes without \
                                 an adjacent sort or order-independent reduction"
                            ),
                        );
                    }
                }
            }
            // --- CD001: `for _ in <map>` -------------------------------
            "for" => {
                // Find `in` at paren depth 0, then scan the iterated
                // expression up to the body `{`.
                let mut paren = 0i32;
                let mut j = i + 1;
                let mut in_at = None;
                while j < toks.len() && j < i + 40 {
                    let u = &toks[j];
                    if u.kind == TokKind::Punct {
                        match u.text.as_str() {
                            "(" | "[" => paren += 1,
                            ")" | "]" => paren -= 1,
                            "{" if paren <= 0 => break,
                            _ => {}
                        }
                    } else if u.kind == TokKind::Ident && u.text == "in" && paren <= 0 {
                        in_at = Some(j);
                        break;
                    }
                    j += 1;
                }
                let Some(in_at) = in_at else { continue };
                let mut paren = 0i32;
                for k in in_at + 1..(in_at + 60).min(toks.len()) {
                    let u = &toks[k];
                    if u.kind == TokKind::Punct {
                        match u.text.as_str() {
                            "(" | "[" => paren += 1,
                            ")" | "]" => paren -= 1,
                            "{" if paren <= 0 => break,
                            _ => {}
                        }
                    } else if u.kind == TokKind::Ident && map_names.contains(&u.text) {
                        // A later `.iter()` in the same header is caught
                        // above; this also catches bare `for k in &map`.
                        let (s, e) = stmt_bounds(toks, k);
                        if !has_order_independent_marker(toks, s, e) {
                            push(
                                &mut seen,
                                &mut findings,
                                u.line,
                                "CD001",
                                format!(
                                    "`for` loop over hash-ordered `{}`: body runs in \
                                     nondeterministic order",
                                    u.text
                                ),
                            );
                        }
                        break;
                    }
                }
            }
            // --- CD002: randomly seeded hashers ------------------------
            "RandomState" | "DefaultHasher" => {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD002",
                    format!(
                        "`{}` constructs a hasher with an unpinned seed; use a fixed-seed hasher",
                        t.text
                    ),
                );
            }
            // --- CD003: wall-clock time outside sim --------------------
            "Instant" | "SystemTime" if !in_sim => {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD003",
                    format!(
                        "`{}` reads the wall clock; simulated components must use `sim` time",
                        t.text
                    ),
                );
            }
            "std" if !in_sim && is_seq(toks, i + 1, &[":", ":", "time"]) => {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD003",
                    "`std::time` outside `crates/sim`; simulated components must use `sim` time"
                        .to_owned(),
                );
            }
            // --- CD004: ambient RNG ------------------------------------
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD004",
                    format!(
                        "`{}` draws ambient randomness outside the seeded sim RNG",
                        t.text
                    ),
                );
            }
            "rand" if is_seq(toks, i + 1, &[":", ":", "random"]) => {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD004",
                    "`rand::random` draws ambient randomness outside the seeded sim RNG".to_owned(),
                );
            }
            "jitter"
                if i > 0
                    && is_punct(&toks[i - 1], ".")
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) =>
            {
                if let Some((fname, _)) = fn_stack.last() {
                    let f = fname.as_str();
                    if STARTUP_PREFIXES.iter().any(|p| f == *p || f.starts_with(p)) {
                        push(
                            &mut seen,
                            &mut findings,
                            t.line,
                            "CD004",
                            format!(
                                "jitter drawn inside constructor/startup path `fn {f}`: shifts \
                                 calibrated RNG streams (keep fixed phases at startup)"
                            ),
                        );
                    }
                }
            }
            // --- CD005: no-panic contract on the core client surface ---
            "panic" | "unreachable" | "todo" | "unimplemented"
                if core_surface
                    && !in_test
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, "!")) =>
            {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD005",
                    format!(
                        "`{}!` on the public client surface; misuse must surface as `TxnError`",
                        t.text
                    ),
                );
            }
            "unwrap" | "expect"
                if core_surface
                    && !in_test
                    && i > 0
                    && is_punct(&toks[i - 1], ".")
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) =>
            {
                push(
                    &mut seen,
                    &mut findings,
                    t.line,
                    "CD005",
                    format!(
                        "`.{}()` on the public client surface; misuse must surface as `TxnError`",
                        t.text
                    ),
                );
            }
            // --- CD006: derive(Hash)-keyed collections in sched/output -
            "HashMap" | "HashSet"
                if sched_out && toks.get(i + 1).is_some_and(|n| is_punct(n, "<")) =>
            {
                if let Some(key) = toks.get(i + 2) {
                    if key.kind == TokKind::Ident && hash_types.contains(&key.text) {
                        push(
                            &mut seen,
                            &mut findings,
                            t.line,
                            "CD006",
                            format!(
                                "`{}<{}>` keyed by a derive(Hash) type in a scheduling/output \
                                 path; review that its ordering never escapes",
                                t.text, key.text
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    findings
}

/// Applies `lint:allow` suppressions to `raw` findings and appends
/// CD000 findings for directive-hygiene violations. Returns the
/// surviving findings and the number of directives that suppressed at
/// least one finding.
pub fn apply_allows(
    rel: &str,
    lines: &[&str],
    lexed: &Lexed,
    raw: Vec<Finding>,
) -> (Vec<Finding>, usize) {
    let rel_slash = rel.replace('\\', "/");
    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (ai, a) in lexed.allows.iter().enumerate() {
            if a.parse_error.is_none()
                && a.reason.is_some()
                && a.rules.iter().any(|r| r == f.rule)
                && (f.line == a.line || f.line == a.line + 1)
            {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (ai, a) in lexed.allows.iter().enumerate() {
        let problem = if let Some(err) = &a.parse_error {
            Some(format!("malformed lint:allow directive: {err}"))
        } else if a.reason.is_none() {
            Some("lint:allow directive without a reason (reasons are mandatory)".to_owned())
        } else if !used[ai] {
            Some(format!(
                "unused lint:allow({}) — it suppresses nothing; remove it",
                a.rules.join(", ")
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            out.push(Finding {
                file: rel_slash.clone(),
                line: a.line,
                rule: "CD000",
                message,
                excerpt: excerpt(lines, a.line),
            });
        }
    }
    let used_count = used.iter().filter(|u| **u).count();
    (out, used_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str) -> Vec<&'static str> {
        lint_str("crates/store/src/x.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn cd001_for_loop_over_map_fires() {
        let src = "fn f(m: &HashMap<u64, u64>) { for (k, v) in m.iter() { emit(k, v); } }";
        assert_eq!(rules_fired(src), vec!["CD001"]);
    }

    #[test]
    fn cd001_bare_for_over_map_fires() {
        let src =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for kv in &m { emit(kv); } }";
        assert_eq!(rules_fired(src), vec!["CD001"]);
    }

    #[test]
    fn cd001_reduction_is_clean() {
        let src = "fn f(m: &HashMap<u64, u64>) -> u64 { m.values().sum() }";
        assert!(rules_fired(src).is_empty());
        let src = "fn g(m: &HashSet<u64>) -> usize { m.iter().count() }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn cd001_adjacent_sort_is_clean() {
        let src = "fn f(m: &HashMap<u64, u64>) -> Vec<u64> {\n\
                   let mut v: Vec<u64> = m.keys().copied().collect();\n\
                   v.sort_unstable();\n v }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn cd001_collect_into_btree_is_clean() {
        let src =
            "fn f(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> { m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>() }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn cd001_through_refcell_borrow_fires() {
        let src = "struct S { v: Rc<RefCell<HashMap<u64, u64>>> }\n\
                   impl S { fn f(&self) { for k in self.v.borrow().keys() { emit(k); } } }";
        assert_eq!(rules_fired(src), vec!["CD001"]);
    }

    #[test]
    fn cd002_fires() {
        assert_eq!(
            rules_fired("fn f() { let s = RandomState::new(); }"),
            vec!["CD002"]
        );
    }

    #[test]
    fn cd003_fires_outside_sim_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_fired(src), vec!["CD003"]);
        assert!(lint_str("crates/sim/src/time.rs", src).is_empty());
    }

    #[test]
    fn cd004_ambient_rng_fires() {
        assert_eq!(
            rules_fired("fn f() { let r = thread_rng(); }"),
            vec!["CD004"]
        );
        assert_eq!(
            rules_fired("fn f() { let r: u8 = rand::random(); }"),
            vec!["CD004"]
        );
    }

    #[test]
    fn cd004_jitter_in_startup_fires_but_not_elsewhere() {
        let bad = "impl S { fn start(&self) { let d = self.sim.jitter(base, 0.5); } }";
        assert_eq!(rules_fired(bad), vec!["CD004"]);
        let ok = "impl S { fn on_tick(&self) { let d = self.sim.jitter(base, 0.5); } }";
        assert!(rules_fired(ok).is_empty());
    }

    #[test]
    fn cd005_only_on_core_surface_and_not_in_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules_fired(src).is_empty());
        let on_surface = lint_str("crates/core/src/txn_client.rs", src);
        assert_eq!(on_surface.len(), 1);
        assert_eq!(on_surface[0].rule, "CD005");
        let test_mod = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }";
        assert!(lint_str("crates/core/src/txn_client.rs", test_mod).is_empty());
    }

    #[test]
    fn cd006_fires_in_sched_output_paths() {
        let src = "#[derive(Copy, Clone, PartialEq, Eq, Hash)]\nstruct NodeId(u64);\n\
                   struct Net { links: HashMap<NodeId, u64> }";
        let f = lint_str("crates/sim/src/net.rs", src);
        // The links field also registers as a map name but is never
        // iterated, so only CD006 fires.
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "CD006");
        assert!(lint_str("crates/store/src/server.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "fn f(m: &HashMap<u64, u64>) {\n\
                   // lint:allow(CD001, reason = \"order-independent accumulation\")\n\
                   for (k, v) in m.iter() { acc(k, v); }\n}";
        assert!(lint_str("crates/store/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_cd000_and_does_not_suppress() {
        let src = "fn f(m: &HashMap<u64, u64>) {\n\
                   // lint:allow(CD001)\n\
                   for (k, v) in m.iter() { acc(k, v); }\n}";
        let fired = rules_fired(src);
        assert_eq!(fired, vec!["CD000", "CD001"]);
    }

    #[test]
    fn unused_allow_is_cd000() {
        let src = "// lint:allow(CD002, reason = \"nothing here\")\nfn f() {}";
        assert_eq!(rules_fired(src), vec!["CD000"]);
    }

    #[test]
    fn findings_inside_strings_or_comments_never_fire() {
        let src = "fn f() { let s = \"thread_rng RandomState Instant\"; // thread_rng\n }";
        assert!(rules_fired(src).is_empty());
    }
}
