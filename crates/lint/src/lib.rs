//! **cumulo-lint** — a workspace determinism linter.
//!
//! The whole reproduction rests on one invariant: *same seed ⇒
//! byte-identical runs*. It is what makes the recovery chaos suites,
//! the pinned bench baselines and every CI double-run diff meaningful.
//! This crate enforces the invariant's known failure modes *statically*,
//! at `cargo` time, instead of at baseline-divergence time:
//!
//! * hash-ordered iteration escaping into ordered context (CD001, CD006)
//! * randomly seeded hashers (CD002)
//! * wall-clock time in simulated components (CD003)
//! * ambient RNG and startup-path jitter draws (CD004)
//! * panics on the core client surface (CD005)
//! * suppression-comment hygiene (CD000)
//!
//! See [`rules`] for the catalogue and `ARCHITECTURE.md`'s
//! "Determinism & static analysis" section for rationale and examples.
//!
//! The pipeline: [`walker`] discovers every file the workspace compiles
//! (following `mod` declarations from each crate root), [`lexer`] turns
//! each file into a comment/string/raw-string-aware token stream,
//! [`rules`] runs the checks and applies `lint:allow` suppressions, and
//! [`report`] renders human text or deterministic JSON.
//!
//! # Example
//!
//! ```
//! use cumulo_lint::rules::lint_str;
//!
//! let findings = lint_str(
//!     "crates/store/src/demo.rs",
//!     "fn f(m: &HashMap<u64, u64>) { for k in m.keys() { emit(k); } }",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "CD001");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walker;

use report::LintReport;
use std::collections::BTreeSet;
use std::path::Path;

/// Lints every file reachable from the workspace's crate roots.
///
/// `root` is the workspace root. The `derive(Hash)` type inventory for
/// CD006 is collected across the whole workspace before per-file rules
/// run, so a type derived in `crates/store` is recognised when keyed
/// into a map in `crates/sim`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let files = walker::workspace_files(root);
    let mut sources: Vec<(String, String, lexer::Lexed)> = Vec::new();
    for f in &files {
        let Ok(src) = std::fs::read_to_string(root.join(f)) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        let rel = f.to_string_lossy().replace('\\', "/");
        sources.push((rel, src, lexed));
    }
    let mut hash_types: BTreeSet<String> = BTreeSet::new();
    for (_, _, lexed) in &sources {
        hash_types.extend(rules::hash_derived_types(&lexed.tokens));
    }
    let mut report = LintReport {
        files_scanned: sources.len(),
        ..LintReport::default()
    };
    for (rel, src, lexed) in &sources {
        let lines: Vec<&str> = src.lines().collect();
        let raw = rules::lint_tokens(rel, &lines, lexed, &hash_types);
        let (kept, used) = rules::apply_allows(rel, &lines, lexed, raw);
        report.findings.extend(kept);
        report.allows_total += lexed.allows.len();
        report.allows_used += used;
    }
    report.findings.sort();
    report
}
