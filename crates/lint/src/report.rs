//! Rendering: human-readable text and deterministic JSON.
//!
//! Both renderings are fully determined by the findings — no
//! timestamps, no absolute paths, no environment — so CI can run the
//! linter twice and `diff` the outputs byte-for-byte: the linter must
//! satisfy the same double-run probe it exists to protect.

use crate::rules::{Finding, RULES};

/// Aggregate result of linting a file set.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Surviving (unsuppressed) findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files lexed and linted.
    pub files_scanned: usize,
    /// Total `lint:allow` directives seen.
    pub allows_total: usize,
    /// Directives that suppressed at least one finding.
    pub allows_used: usize,
}

/// Renders findings like rustc diagnostics, one block per finding, with
/// a trailing summary line.
pub fn render_human(r: &LintReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        out.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}\n   | {}\n",
            f.rule, f.message, f.file, f.line, f.excerpt
        ));
    }
    out.push_str(&format!(
        "determinism_lint: {} finding(s) across {} file(s); {}/{} lint:allow directive(s) in use\n",
        r.findings.len(),
        r.files_scanned,
        r.allows_used,
        r.allows_total
    ));
    out
}

/// Renders the full report as deterministic JSON: object keys in fixed
/// order, findings pre-sorted, `\n`-terminated.
pub fn render_json(r: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str(&format!(
        "  \"allows\": {{\"total\": {}, \"used\": {}}},\n",
        r.allows_total, r.allows_used
    ));
    out.push_str("  \"rules\": [");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", rule.id));
    }
    out.push_str("],\n");
    out.push_str("  \"findings\": [");
    for (i, f) in r.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"excerpt\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.excerpt)
        ));
    }
    if !r.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_owned(),
                line: 3,
                rule: "CD001",
                message: "iteration over `m`".to_owned(),
                excerpt: "for k in m.keys() { \"q\\\" }".to_owned(),
            }],
            files_scanned: 2,
            allows_total: 1,
            allows_used: 1,
        }
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let a = render_json(&sample());
        let b = render_json(&sample());
        assert_eq!(a, b);
        assert!(a.contains("\\\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn human_render_mentions_rule_file_line() {
        let h = render_human(&sample());
        assert!(h.contains("error[CD001]"));
        assert!(h.contains("crates/x/src/lib.rs:3"));
        assert!(h.contains("1 finding(s)"));
    }
}
