//! CLI for the workspace determinism linter.
//!
//! ```text
//! determinism_lint [--json] [--deny] [--rules] [--root PATH]
//! ```
//!
//! * `--json`  — emit the deterministic JSON report instead of text
//! * `--deny`  — exit non-zero when any unsuppressed finding remains
//!   (the CI mode; CI also runs it twice and diffs the JSON)
//! * `--rules` — print the rule catalogue and exit
//! * `--root`  — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`)

use cumulo_lint::report::{render_human, render_json};
use cumulo_lint::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--rules" => {
                for r in RULES {
                    println!("{}  {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("determinism_lint: unknown argument `{other}`");
                eprintln!("usage: determinism_lint [--json] [--deny] [--rules] [--root PATH]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("determinism_lint: no workspace root found (try --root PATH)");
        return ExitCode::from(2);
    };
    let report = cumulo_lint::lint_workspace(&root);
    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
