//! Workspace discovery: finds every Rust file the linter must scan by
//! following `mod` declarations from each crate root.
//!
//! Roots are, per workspace member (vendored `third_party/` subsets are
//! deliberately skipped — they are frozen API shims, not simulation
//! code): `src/lib.rs`, `src/main.rs`, every `src/bin/*.rs`,
//! `tests/*.rs`, `benches/*.rs` and `examples/*.rs`. From each root the
//! walker lexes the file and follows `mod name;` declarations (including
//! through inline `mod name { ... }` nesting and `#[path = "..."]`
//! overrides) to `name.rs` / `name/mod.rs`, so a stray `.rs` file that
//! no crate compiles is never linted — exactly the set rustc sees.

use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Returns the sorted, de-duplicated, workspace-relative list of Rust
/// files reachable from the workspace's crate roots.
///
/// `root` is the workspace root (the directory holding the top-level
/// `Cargo.toml`). Unreadable or missing files are skipped silently —
/// `cfg`'d-out modules routinely point at files that exist only on
/// other platforms.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut visited: BTreeSet<PathBuf> = BTreeSet::new();
    for dir in member_dirs(root) {
        for r in package_roots(&root.join(&dir)) {
            follow(root, dir.join(r), &mut visited);
        }
    }
    visited.into_iter().collect()
}

/// Workspace member directories (relative), plus the root package, with
/// `third_party/` members filtered out.
fn member_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
        }
        if in_members {
            for piece in line.split(',') {
                let piece = piece.trim().trim_matches(|c| c == '[' || c == ']').trim();
                if let Some(name) = piece.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
                    if !name.starts_with("third_party") {
                        dirs.push(PathBuf::from(name));
                    }
                }
            }
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    // The umbrella root package (integration tests + examples).
    if manifest.contains("[package]") {
        dirs.push(PathBuf::from("."));
    }
    dirs
}

/// Compilation roots of one package directory, relative to it.
fn package_roots(pkg: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for fixed in ["src/lib.rs", "src/main.rs"] {
        if pkg.join(fixed).is_file() {
            roots.push(PathBuf::from(fixed));
        }
    }
    for dir in ["src/bin", "tests", "benches", "examples"] {
        let Ok(entries) = std::fs::read_dir(pkg.join(dir)) else {
            continue;
        };
        let mut names: Vec<PathBuf> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "rs"))
            .map(|e| PathBuf::from(dir).join(e.file_name()))
            .collect();
        names.sort();
        roots.append(&mut names);
    }
    roots
}

/// Depth-first walk from one file, pushing every reached file (relative
/// to the workspace root) into `visited`.
fn follow(root: &Path, rel: PathBuf, visited: &mut BTreeSet<PathBuf>) {
    let rel = normalize(&rel);
    if !visited.insert(rel.clone()) {
        return;
    }
    let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
        visited.remove(&rel);
        return;
    };
    let toks = lex(&src).tokens;
    // Children of `lib.rs`/`main.rs`/`mod.rs` and of any compilation
    // root (tests/foo.rs, src/bin/foo.rs) live next to the file; children
    // of an ordinary module file `src/foo.rs` live in `src/foo/`.
    let file_name = rel.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let parent = rel.parent().unwrap_or(Path::new("")).to_path_buf();
    let is_root_like = matches!(file_name, "lib.rs" | "main.rs" | "mod.rs")
        || parent.ends_with("tests")
        || parent.ends_with("benches")
        || parent.ends_with("examples")
        || parent.ends_with("bin");
    let base = if is_root_like {
        parent
    } else {
        parent.join(rel.file_stem().and_then(|n| n.to_str()).unwrap_or(""))
    };

    // Inline-module nesting: (name, brace depth at entry).
    let mut inline: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while inline.last().is_some_and(|(_, d)| *d > depth) {
                    inline.pop();
                }
            }
            (TokKind::Ident, "mod") => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        match toks.get(i + 2).map(|t| t.text.as_str()) {
                            Some(";") => {
                                let sub = resolve_child(
                                    &base,
                                    &inline,
                                    &name_tok.text,
                                    path_override(&toks, i),
                                );
                                for cand in sub {
                                    if root.join(&cand).is_file() {
                                        follow(root, cand, visited);
                                        break;
                                    }
                                }
                                i += 2;
                            }
                            Some("{") => {
                                depth += 1;
                                inline.push((name_tok.text.clone(), depth));
                                i += 2;
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Candidate paths for `mod name;` declared under `inline` nesting.
fn resolve_child(
    base: &Path,
    inline: &[(String, usize)],
    name: &str,
    path_attr: Option<String>,
) -> Vec<PathBuf> {
    let mut dir = base.to_path_buf();
    for (m, _) in inline {
        dir = dir.join(m);
    }
    if let Some(p) = path_attr {
        return vec![normalize(&dir.join(p))];
    }
    vec![
        normalize(&dir.join(format!("{name}.rs"))),
        normalize(&dir.join(name).join("mod.rs")),
    ]
}

/// If tokens directly before the `mod` at `mod_idx` are
/// `#[path = "..."]`, returns the path string.
fn path_override(toks: &[Token], mod_idx: usize) -> Option<String> {
    if mod_idx < 6 {
        return None;
    }
    let window = &toks[mod_idx - 6..mod_idx];
    let shape: Vec<&str> = window
        .iter()
        .map(|t| match t.kind {
            TokKind::Str => "\"\"",
            _ => t.text.as_str(),
        })
        .collect();
    if shape == ["#", "[", "path", "=", "\"\"", "]"] {
        return Some(window[4].text.clone());
    }
    None
}

/// Lexically removes `.` components so joined paths compare equal.
fn normalize(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            std::path::Component::CurDir => {}
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The walker, run over this workspace, reaches this very file and
    /// never reaches the vendored subsets or the test fixture corpus.
    #[test]
    fn walks_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root);
        assert!(!files.is_empty());
        let has = |s: &str| files.iter().any(|f| f.ends_with(s));
        assert!(has("crates/lint/src/walker.rs"), "missed ourselves");
        assert!(has("crates/sim/src/kernel.rs"));
        assert!(has("tests/common/mod.rs") || has("tests/chaos.rs"));
        assert!(
            !files.iter().any(|f| f.starts_with("third_party")),
            "vendored subsets must not be linted"
        );
        assert!(
            !files
                .iter()
                .any(|f| f.to_string_lossy().contains("tests/fixtures/")),
            "fixture corpus must not be linted"
        );
        assert!(
            has("crates/lint/tests/fixtures_test.rs"),
            "the fixture harness itself is real code and must be linted"
        );
        // Deterministic: same inputs, same sorted list.
        assert_eq!(files, workspace_files(&root));
    }
}
